"""Workload generator tests (including the NPB LCG)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import datasets as ds


class TestCSR:
    def test_shapes_consistent(self):
        values, cols, rowptr = ds.random_csr(100, 0.05)
        assert rowptr[0] == 0 and rowptr[-1] == len(values)
        assert len(cols) == len(values)
        assert len(rowptr) == 101

    def test_column_indices_in_range(self):
        _, cols, _ = ds.random_csr(64, 0.1)
        assert cols.min() >= 0 and cols.max() < 64

    def test_per_row_override(self):
        values, _, rowptr = ds.random_csr(32, per_row=5)
        assert len(values) == 32 * 5
        assert np.all(np.diff(rowptr) == 5)

    def test_no_duplicate_cols_within_row(self):
        _, cols, rowptr = ds.random_csr(50, 0.2)
        for r in range(50):
            row = cols[rowptr[r]:rowptr[r + 1]]
            assert len(np.unique(row)) == len(row)

    def test_deterministic(self):
        a = ds.random_csr(32, 0.1, seed=5)
        b = ds.random_csr(32, 0.1, seed=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_reference_matches_scipy(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        values, cols, rowptr = ds.random_csr(64, 0.1)
        x = ds.random_vector(64)
        mat = scipy_sparse.csr_matrix((values, cols, rowptr),
                                      shape=(64, 64))
        ours = ds.csr_matvec_reference(values, cols, rowptr, x)
        assert np.allclose(ours, mat @ x, rtol=1e-5)


class TestFloydData:
    def test_diagonal_zero(self):
        d = ds.random_graph_distances(16)
        assert np.all(np.diag(d) == 0)

    def test_reference_idempotent(self):
        d = ds.random_graph_distances(24)
        once = ds.floyd_warshall_reference(d)
        twice = ds.floyd_warshall_reference(once)
        assert np.array_equal(once, twice)

    def test_reference_shrinks_distances(self):
        d = ds.random_graph_distances(24)
        sp = ds.floyd_warshall_reference(d)
        assert np.all(sp <= d)

    def test_triangle_inequality(self):
        d = ds.random_graph_distances(12)
        sp = ds.floyd_warshall_reference(d).astype(np.int64)
        for k in range(12):
            assert np.all(sp <= sp[:, k:k + 1] + sp[k:k + 1, :])


class TestNPBRandom:
    def test_randlc_range(self):
        x = ds.EP_SEED
        for _ in range(100):
            u, x = ds.randlc(x, ds.EP_A)
            assert 0.0 < u < 1.0
            assert x == float(int(x))          # exact integer in double
            assert 0 <= x < 2 ** 46

    def test_lcg_power_matches_iteration(self):
        # a^5 computed by square-and-multiply == five sequential steps
        b = ds.lcg_power(ds.EP_A, 5)
        x_jump, _ = None, None
        _, x = ds.randlc(ds.EP_SEED, b)
        y = ds.EP_SEED
        for _ in range(5):
            _, y = ds.randlc(y, ds.EP_A)
        assert x == y

    def test_lcg_power_zero_is_identity(self):
        b = ds.lcg_power(ds.EP_A, 0)
        _, x = ds.randlc(ds.EP_SEED, b)
        assert x == ds.EP_SEED

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lcg_jump_consistency(self, n):
        b = ds.lcg_power(ds.EP_A, n)
        _, jumped = ds.randlc(ds.EP_SEED, b)
        y = ds.EP_SEED
        for _ in range(n % 50):   # bounded walk, compare partially
            _, y = ds.randlc(y, ds.EP_A)
        if n % 50 == n:
            assert jumped == y

    def test_ep_reference_class_s_sanity(self):
        sx, sy, q = ds.ep_reference(14)
        assert q.sum() <= 2 ** 14
        assert q[0] > q[3]   # inner annuli catch most samples

    def test_ep_reference_deterministic(self):
        a = ds.ep_reference(12)
        b = ds.ep_reference(12)
        assert a[0] == b[0] and a[1] == b[1]
        assert np.array_equal(a[2], b[2])
