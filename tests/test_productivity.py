"""SLOC metric tests (sloccount-equivalent of §V-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.productivity import (count_sloc, count_sloc_c,
                                count_sloc_python, sloc_report)


class TestCSloc:
    def test_plain_lines(self):
        assert count_sloc_c("int a;\nint b;\n") == 2

    def test_blank_lines_excluded(self):
        assert count_sloc_c("int a;\n\n\nint b;") == 2

    def test_line_comments_excluded(self):
        assert count_sloc_c("// comment only\nint a; // trailing\n") == 1

    def test_block_comment_excluded(self):
        assert count_sloc_c("/* a\nb\nc */\nint x;") == 1

    def test_code_before_block_comment_counts(self):
        assert count_sloc_c("int x; /* c\nmore c */ int y;") == 2

    def test_comment_markers_inside_strings(self):
        assert count_sloc_c('char* s = "// not a comment";') == 1

    def test_whitespace_only_line(self):
        assert count_sloc_c("   \t  \nint x;") == 1

    def test_empty_source(self):
        assert count_sloc_c("") == 0

    def test_realistic_kernel(self):
        src = """
        /* header comment */
        __kernel void f(__global int* a) {
            int i = get_global_id(0);   // thread id
            a[i] = i;
        }
        """
        assert count_sloc_c(src) == 4


class TestPythonSloc:
    def test_plain(self):
        assert count_sloc_python("a = 1\nb = 2\n") == 2

    def test_comments_excluded(self):
        assert count_sloc_python("# comment\na = 1  # x\n") == 1

    def test_blank_lines_excluded(self):
        assert count_sloc_python("a = 1\n\n\nb = 2\n") == 2

    def test_multiline_statement_counts_all_lines(self):
        assert count_sloc_python("x = (1 +\n     2)\n") == 2

    def test_docstrings_counted_by_default(self):
        src = 'def f():\n    """doc"""\n    return 1\n'
        assert count_sloc_python(src) == 3

    def test_docstrings_excludable(self):
        src = 'def f():\n    """doc"""\n    return 1\n'
        assert count_sloc_python(src, count_docstrings=False) == 2

    def test_triple_quoted_data_counts(self):
        src = 'KERNEL = """\nline\n"""\n'
        assert count_sloc_python(src) == 3

    def test_dispatch(self):
        assert count_sloc("int a;", "c") == 1
        assert count_sloc("a = 1", "python") == 1
        with pytest.raises(ValueError):
            count_sloc("x", "cobol")


class TestReport:
    def test_rows(self):
        rows = sloc_report([
            ("bench", ("int a;\nint b;\nint c;\nint d;", "c"),
             ("a = 1", "python")),
        ])
        row = rows[0]
        assert row["opencl_sloc"] == 4 and row["hpl_sloc"] == 1
        assert row["reduction_pct"] == pytest.approx(75.0)
        assert row["ratio"] == pytest.approx(4.0)


@given(st.lists(st.sampled_from(["int x;", "", "// c", "   "]),
                max_size=30))
def test_c_sloc_never_exceeds_line_count(lines):
    text = "\n".join(lines)
    assert 0 <= count_sloc_c(text) <= len(lines or [""])


@given(st.lists(st.sampled_from(["x = 1", "", "# c"]), max_size=30))
def test_python_sloc_counts_code_lines_exactly(lines):
    text = "\n".join(lines)
    expected = sum(1 for ln in lines if ln == "x = 1")
    assert count_sloc_python(text) == expected
