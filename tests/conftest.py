"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from repro.hpl import reset_runtime
from repro.ocl import QUADRO_FX380, TESLA_C2050, XEON_HOST


@pytest.fixture()
def fresh_runtime():
    """An HPL runtime reset before and after the test."""
    reset_runtime()
    yield
    reset_runtime()


@pytest.fixture()
def tesla_vector():
    """A Tesla-spec device running the lock-step vector engine."""
    return cl.Device(TESLA_C2050, "vector")


@pytest.fixture()
def tesla_serial():
    """A Tesla-spec device running the serial reference interpreter."""
    return cl.Device(TESLA_C2050, "serial")


@pytest.fixture(params=["vector", "serial", "jit"])
def any_engine_device(request):
    """Parametrized over every built-in execution engine."""
    return cl.Device(TESLA_C2050, request.param)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def run_cl_kernel(device, source, kernel_name, args, global_size,
                  local_size=None, options=""):
    """Compile + run a kernel on a one-device context; returns the event.

    ``args`` entries: numpy arrays become buffers (copied in and, after
    the run, copied back in place), numpy scalars pass by value, and
    ``("local", nbytes)`` tuples become size-only local arguments.
    """
    ctx = cl.Context([device])
    queue = cl.CommandQueue(ctx, device)
    program = cl.Program(ctx, source).build(options)
    kernel = program.create_kernel(kernel_name)
    buffers = []
    for i, arg in enumerate(args):
        if isinstance(arg, np.ndarray):
            buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=arg.nbytes)
            queue.enqueue_write_buffer(buf, arg)
            kernel.set_arg(i, buf)
            buffers.append((buf, arg))
        elif isinstance(arg, tuple) and arg and arg[0] == "local":
            kernel.set_arg(i, cl.LocalMemory(arg[1]))
        else:
            kernel.set_arg(i, arg)
    event = queue.enqueue_nd_range_kernel(kernel, global_size, local_size)
    for buf, host in buffers:
        queue.enqueue_read_buffer(buf, host)
    queue.finish()
    return event


@pytest.fixture()
def cl_run():
    return run_cl_kernel
