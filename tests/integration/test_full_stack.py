"""End-to-end scenarios across the whole stack, including the examples."""

import runpy

import numpy as np
import pytest

import repro.hpl as hpl
from repro.hpl import (LOCAL, Array, Double, Float, Int, Local, barrier,
                       double_, endfor_, endif_, eval, float_, for_, gidx,
                       idx, if_, int_, lidx)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestExamplesRun:
    """The shipped examples are part of the tested surface."""

    @pytest.mark.parametrize("example,kwargs", [
        ("examples/quickstart.py", {}),
        ("examples/heat_diffusion.py", {"n": 512, "steps": 30}),
        ("examples/nbody.py", {"n": 96, "steps": 2}),
        ("examples/multi_device.py", {"n": 5000}),
        ("examples/transpose_naive.py", {"h": 64, "w": 64}),
    ])
    def test_example(self, example, kwargs):
        mod = runpy.run_path(example)
        mod["main"](**kwargs)


class TestMixedWorkflow:
    def test_pipeline_of_heterogeneous_kernels(self, rng):
        """A realistic pipeline: normalize on the GPU, then per-group
        partial sums through local memory — the intermediate data stays
        device-resident throughout."""
        n, group = 4096, 64

        def normalize(data, lo, span):
            data[idx] = (data[idx] - lo) / span

        def group_sums(partial, data):
            s = Array(float_, group, mem=Local)
            s[lidx] = data[idx]
            barrier(LOCAL)
            if_(lidx == 0)
            acc = Float(0)
            i = Int()
            for_(i, 0, group)
            acc += s[i]
            endfor_()
            partial[gidx] = acc
            endif_()

        raw = rng.random(n).astype(np.float32) * 50 + 10
        data = Array(float_, n, data=raw.copy())
        lo = float(raw.min())
        span = float(raw.max() - raw.min())
        eval(normalize)(data, Float(lo), Float(span))

        partial = Array(float_, n // group)
        eval(group_sums).global_(n).local_(group)(partial, data)

        expected = ((raw - lo) / span).reshape(-1, group).sum(axis=1)
        assert np.allclose(partial.read(), expected, rtol=1e-4)
        # one upload (raw); normalize result stayed on the device
        assert hpl.get_runtime().stats.h2d_transfers == 1

    def test_same_kernel_both_gpus_same_results(self, rng):
        def scale(a, f):
            a[idx] = a[idx] * f

        base = rng.random(256).astype(np.float32)
        results = []
        for name in ("Tesla", "Quadro"):
            a = Array(float_, 256, data=base.copy())
            eval(scale).device(name)(a, Float(1.5))
            results.append(a.read().copy())
        assert np.array_equal(results[0], results[1])

    def test_cpu_device_also_runs_hpl(self, rng):
        def incr(a):
            a[idx] = a[idx] + 1.0

        a = Array(double_, 64).fill(1.0)
        eval(incr).device("Xeon")(a)
        assert np.all(a.read() == 2.0)

    def test_double_precision_workflow_matches_numpy_exactly(self, rng):
        """double arithmetic in the engines is IEEE double: results are
        bit-identical to NumPy for the same expression."""
        def poly(out, x):
            out[idx] = (x[idx] * x[idx] * 3.0 + x[idx] * 2.0) - 7.0

        xs = rng.random(128)
        x = Array(double_, 128, data=xs.copy())
        out = Array(double_, 128)
        eval(poly)(out, x)
        assert np.array_equal(out.read(), (xs * xs * 3.0 + xs * 2.0) - 7.0)

    def test_many_kernels_many_arrays_stress(self, rng):
        arrays = [Array(float_, 128) for _ in range(10)]
        for i, a in enumerate(arrays):
            a.fill(float(i))

        def add_into(dst, src):
            dst[idx] = dst[idx] + src[idx]

        for i in range(1, 10):
            eval(add_into)(arrays[0], arrays[i])
        assert np.all(arrays[0].read() == sum(range(10)))
        stats = hpl.get_runtime().stats
        assert stats.kernels_built == 1    # one signature, one binary
        assert stats.cache_hits == 8
