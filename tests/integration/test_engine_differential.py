"""Differential testing: the two execution engines must agree exactly on
the real benchmark kernels, and on randomized elementwise kernels
generated through the HPL DSL (compared against a NumPy oracle too).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ocl as cl
from repro.benchsuite.reduction.kernels import REDUCTION_OPENCL_SOURCE
from repro.benchsuite.spmv.kernels import SPMV_OPENCL_SOURCE
from repro.benchsuite.transpose.kernels import TRANSPOSE_OPENCL_SOURCE
from tests.conftest import run_cl_kernel


def run_on(engine, source, name, args, gsize, lsize=None):
    device = cl.Device(cl.TESLA_C2050, engine)
    copies = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
    run_cl_kernel(device, source, name, copies, gsize, lsize)
    return [a for a in copies if isinstance(a, np.ndarray)]


class TestBenchmarkKernelsAgree:
    def test_spmv_kernel(self, rng):
        from repro.benchsuite.datasets import random_csr
        n = 48
        values, cols, rowptr = random_csr(n, per_row=6)
        x = rng.random(n).astype(np.float32)
        out = np.zeros(n, np.float32)
        args = [values, x, cols, rowptr, out]
        a = run_on("vector", SPMV_OPENCL_SOURCE, "spmv", args,
                   (n * 8,), (8,))
        b = run_on("serial", SPMV_OPENCL_SOURCE, "spmv", args,
                   (n * 8,), (8,))
        assert np.array_equal(a[-1], b[-1])

    def test_transpose_kernel(self, rng):
        n = 32
        src = rng.random((n, n)).astype(np.float32)
        out = np.zeros_like(src)
        args = [out, src, np.int32(n), np.int32(n)]
        a = run_on("vector", TRANSPOSE_OPENCL_SOURCE, "matrixTranspose",
                   args, (n, n), (16, 16))
        b = run_on("serial", TRANSPOSE_OPENCL_SOURCE, "matrixTranspose",
                   args, (n, n), (16, 16))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[0], src.T)

    def test_reduction_kernel(self, rng):
        n = 4096
        data = rng.random(n).astype(np.float32)
        out = np.zeros(8, np.float32)
        args = [data, out, ("local", 64 * 4), np.int32(n)]
        a = run_on("vector", REDUCTION_OPENCL_SOURCE, "reduce", args,
                   (8 * 64,), (64,))
        b = run_on("serial", REDUCTION_OPENCL_SOURCE, "reduce", args,
                   (8 * 64,), (64,))
        assert np.array_equal(a[-1], b[-1])

    def test_ep_kernel_small(self):
        from repro.benchsuite.ep.kernels import EP_OPENCL_SOURCE
        sx = np.zeros(8, np.float64)
        sy = np.zeros(8, np.float64)
        q = np.zeros(80, np.int32)
        args = [sx, sy, q, np.int64(64), 271828183.0, 1220703125.0]
        a = run_on("vector", EP_OPENCL_SOURCE, "ep", args, (8,), (4,))
        b = run_on("serial", EP_OPENCL_SOURCE, "ep", args, (8,), (4,))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


# -- randomized elementwise kernels through the HPL DSL -----------------------

_UNARY_OPS = ["neg", "sqrt", "fabs"]
_BINARY_OPS = ["+", "-", "*", "min", "max"]


def _np_apply(op, *vals):
    table = {
        "+": lambda a, b: a + b, "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "min": np.minimum, "max": np.maximum,
        "neg": lambda a: -a, "sqrt": np.sqrt, "fabs": np.abs,
    }
    return table[op](*vals)


@st.composite
def expr_programs(draw):
    """A random sequence of elementwise float operations."""
    n_ops = draw(st.integers(1, 6))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            ops.append(("bin", draw(st.sampled_from(_BINARY_OPS)),
                        draw(st.floats(-4, 4).map(lambda f: round(f, 3)))))
        else:
            ops.append(("un", draw(st.sampled_from(_UNARY_OPS)), None))
    return ops


@settings(max_examples=30, deadline=None)
@given(program=expr_programs(),
       values=st.lists(st.floats(0.1, 10), min_size=1, max_size=40))
def test_random_dsl_kernels_match_numpy_oracle(program, values):
    """Build an HPL kernel from a random op sequence; its result must
    match NumPy applying the same float32 operations."""
    import repro.hpl as hpl
    from repro.hpl import Array, fabs, float_, fmax, fmin, idx, sqrt

    hpl.reset_runtime()

    def randk(out, src):
        acc = src[idx]
        for kind, op, const in program:
            if kind == "bin":
                if op == "min":
                    acc = fmin(acc, const)
                elif op == "max":
                    acc = fmax(acc, const)
                elif op == "+":
                    acc = acc + const
                elif op == "-":
                    acc = acc - const
                else:
                    acc = acc * const
            else:
                if op == "neg":
                    acc = -acc
                elif op == "sqrt":
                    acc = sqrt(fabs(acc))
                else:
                    acc = fabs(acc)
        out[idx] = acc

    data = np.array(values, dtype=np.float32)
    src = Array(float_, len(data), data=data.copy())
    out = Array(float_, len(data))
    hpl.eval(randk)(out, src)

    expected = data.astype(np.float32)
    for kind, op, const in program:
        if kind == "bin":
            expected = _np_apply(op, expected,
                                 np.float32(const)).astype(np.float32)
        elif op == "sqrt":
            expected = np.sqrt(np.abs(expected)).astype(np.float32)
        else:
            expected = _np_apply(op, expected).astype(np.float32)

    assert np.allclose(out.read(), expected, rtol=1e-5, atol=1e-6,
                       equal_nan=True)
