"""Semantic analysis tests."""

import pytest

from repro.clc import compile_source
from repro.clc import ir as I
from repro.clc.types import DOUBLE, FLOAT, INT, LONG, UINT, ULONG
from repro.errors import SemanticError


def compile_kernel_body(body, params="__global int* a"):
    src = f"__kernel void k({params}) {{ {body} }}"
    return compile_source(src).kernels["k"]


def expect_error(body, match, params="__global int* a"):
    with pytest.raises(SemanticError, match=match):
        compile_kernel_body(body, params)


class TestSignatures:
    def test_kernel_must_return_void(self):
        with pytest.raises(SemanticError, match="return void"):
            compile_source("__kernel int k() { return 1; }")

    def test_kernel_pointer_needs_address_space(self):
        with pytest.raises(SemanticError, match="__global"):
            compile_source("__kernel void k(float* p) {}")

    def test_helper_pointer_defaults_to_global(self):
        prog = compile_source(
            "void f(float* p) { p[0] = 1.0f; } __kernel void k() {}")
        assert str(prog.functions["f"].params[0].type) == \
            "__global float*"

    def test_duplicate_param_rejected(self):
        with pytest.raises(SemanticError, match="duplicate"):
            compile_source("__kernel void k(int x, int x) {}")

    def test_redefining_function_rejected(self):
        with pytest.raises(SemanticError, match="redefinition"):
            compile_source("void f() {} void f() {}")

    def test_pointer_to_pointer_rejected(self):
        with pytest.raises(SemanticError, match="pointer-to-pointer"):
            compile_source("__kernel void k(__global float** p) {}")


class TestTyping:
    def test_int_plus_float_is_float(self):
        k = compile_kernel_body("float x = a[0] + 1.5f;",
                                "__global float* a")
        decl = [s for s in k.body if isinstance(s, I.DeclVar)][0]
        assert decl.init.type is FLOAT

    def test_double_literal_promotes(self):
        k = compile_kernel_body("double x = a[0] * 0.5;",
                                "__global float* a")
        assert k.uses_fp64

    def test_float_only_kernel_has_no_fp64(self):
        k = compile_kernel_body("a[0] = a[0] * 2.0f;",
                                "__global float* a")
        assert not k.uses_fp64

    def test_comparison_yields_int(self):
        k = compile_kernel_body("int x = a[0] < a[1];")
        decl = [s for s in k.body if isinstance(s, I.DeclVar)][0]
        assert decl.init.type is INT

    def test_small_ints_promote_to_int(self):
        src = ("__kernel void k(__global char* a) "
               "{ int x = a[0] + a[1]; }")
        prog = compile_source(src)
        decl = [s for s in prog.kernels["k"].body
                if isinstance(s, I.DeclVar)][0]
        assert decl.init.type is INT

    def test_signed_unsigned_same_rank_goes_unsigned(self):
        k = compile_kernel_body("uint u = 1u; int i = 2; a[0] = u + i;",
                                "__global uint* a")
        store = [s for s in k.body if isinstance(s, I.Store)][0]
        assert store.value.type is UINT or isinstance(store.value,
                                                      I.Convert)

    def test_modulo_on_floats_rejected(self):
        expect_error("a[0] = 1.0f % 2.0f;", "fmod",
                     "__global float* a")

    def test_bitwise_on_floats_rejected(self):
        expect_error("a[0] = 1.0f & 2.0f;", "integer",
                     "__global float* a")

    def test_large_literal_is_long(self):
        k = compile_kernel_body("long x = 4294967296;")
        decl = [s for s in k.body if isinstance(s, I.DeclVar)][0]
        assert decl.init.type in (LONG, ULONG)

    def test_index_must_be_integer(self):
        expect_error("a[1.5f] = 1;", "integer")

    def test_cast_to_scalar(self):
        k = compile_kernel_body("a[0] = (int)(1.9f);")
        store = [s for s in k.body if isinstance(s, I.Store)][0]
        assert store.value.type is INT


class TestNamesAndScopes:
    def test_undeclared_name_rejected(self):
        expect_error("a[0] = nope;", "undeclared")

    def test_block_scoping(self):
        expect_error("{ int x = 1; } a[0] = x;", "undeclared")

    def test_shadowing_in_inner_block_ok(self):
        k = compile_kernel_body("int x = 1; { int y = x; a[0] = y; }")
        assert k is not None

    def test_redeclaration_in_same_scope_rejected(self):
        expect_error("int x = 1; int x = 2;", "redeclaration")

    def test_for_scope_variable(self):
        expect_error("for (int i = 0; i < 4; i++) {} a[0] = i;",
                     "undeclared")

    def test_predefined_constants(self):
        k = compile_kernel_body("a[0] = INT_MAX;")
        assert k is not None


class TestStatements:
    def test_break_outside_loop_rejected(self):
        expect_error("break;", "outside")

    def test_continue_outside_loop_rejected(self):
        expect_error("continue;", "outside")

    def test_assignment_inside_expression_rejected(self):
        expect_error("a[0] = (a[1] = 2);", "subset|assignment")

    def test_chained_assignment_rejected(self):
        expect_error("a[0] = a[1] = 2;", "chained|subset|assignment")

    def test_incdec_only_as_statement(self):
        expect_error("a[0] = a[1]++;", "statement")

    def test_expression_statement_must_have_effect(self):
        expect_error("1 + 2;", "statements")

    def test_store_to_constant_memory_rejected(self):
        expect_error("c[0] = 1.0f;", "read-only",
                     "__constant float* c")

    def test_assign_to_kernel_scalar_arg_rejected(self):
        expect_error("n = 3;", "by-value",
                     "__global int* a, int n")

    def test_helper_can_assign_its_scalar_params(self):
        prog = compile_source(
            "int f(int x) { x = x + 1; return x; }"
            "__kernel void k(__global int* a) { a[0] = f(a[0]); }")
        assert "f" in prog.functions

    def test_assign_to_array_name_rejected(self):
        expect_error("a = a;", "element")


class TestLocalsAndBarriers:
    def test_local_array_in_kernel(self):
        k = compile_kernel_body("__local float s[8]; s[0] = 1.0f;")
        assert k.local_arrays == ["s"]

    def test_local_in_helper_rejected(self):
        with pytest.raises(SemanticError, match="kernel"):
            compile_source("void f() { __local float s[8]; }")

    def test_local_array_size_must_be_constant(self):
        expect_error("int n = 4; __local float s[n];", "constant")

    def test_barrier_sets_flag(self):
        k = compile_kernel_body("barrier(CLK_LOCAL_MEM_FENCE);")
        assert k.uses_barrier

    def test_barrier_in_helper_rejected(self):
        with pytest.raises(SemanticError, match="helper"):
            compile_source(
                "void f() { barrier(CLK_LOCAL_MEM_FENCE); }"
                "__kernel void k() {}")

    def test_barrier_flags_must_be_constant(self):
        expect_error("barrier(a[0]);", "constant")

    def test_array_initializer_rejected(self):
        expect_error("float s[2] = 0;", "initializer")


class TestCallsAndAccess:
    def test_unknown_function_rejected(self):
        expect_error("a[0] = frob(1);", "unknown")

    def test_builtin_arity_checked(self):
        expect_error("a[0] = max(1);", "argument")

    def test_workitem_dim_must_be_constant(self):
        expect_error("a[0] = get_global_id(a[0]);", "constant")

    def test_workitem_dim_range_checked(self):
        expect_error("a[0] = get_global_id(3);", "0, 1 or 2")

    def test_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            compile_source(
                "int f(int x) { return g(x); }"
                "int g(int x) { return f(x); }"
                "__kernel void k() {}")

    def test_param_read_write_classification(self):
        src = ("__kernel void k(__global float* r, __global float* w,"
               " __global float* rw) {"
               " w[0] = r[0]; rw[0] = rw[1]; }")
        params = {p.name: p for p in
                  compile_source(src).kernels["k"].params}
        assert params["r"].is_read and not params["r"].is_written
        assert params["w"].is_written and not params["w"].is_read
        assert params["rw"].is_read and params["rw"].is_written

    def test_augmented_store_counts_as_read(self):
        src = "__kernel void k(__global int* a) { a[0] += 1; }"
        param = compile_source(src).kernels["k"].params[0]
        assert param.is_read and param.is_written

    def test_access_propagates_through_helpers(self):
        src = ("void h(__global float* p) { p[0] = 1.0f; }"
               "__kernel void k(__global float* out) { h(out); }")
        param = compile_source(src).kernels["k"].params[0]
        assert param.is_written

    def test_fp64_propagates_through_helpers(self):
        src = ("double h(double x) { return x * 2.0; }"
               "__kernel void k(__global float* a) "
               "{ a[0] = (float)h(1.0); }")
        assert compile_source(src).kernels["k"].uses_fp64

    def test_atomic_requires_address_of(self):
        expect_error("atomic_add(a[0], 1);", "&array")

    def test_atomic_on_float_rejected(self):
        expect_error("atomic_add(&f[0], 1);", "integer",
                     "__global float* f")

    def test_atomic_ok_on_global_int(self):
        k = compile_kernel_body("atomic_add(&a[0], 2);")
        assert any(isinstance(s, I.AtomicRMW) for s in k.body)

    def test_helper_pointer_arg_must_be_named(self):
        with pytest.raises(SemanticError, match="named"):
            compile_source(
                "void h(__global int* p) { p[0] = 1; }"
                "__kernel void k(__global int* a) { h(a[0]); }")


def test_sema_error_for_missing_helper_param():
    with pytest.raises(SemanticError):
        compile_source("void h(__global int* p) {}"
                       "__kernel void k(__global int* a) { h(); }")
