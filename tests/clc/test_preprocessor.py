"""Preprocessor tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clc.preprocessor import preprocess
from repro.errors import PreprocessorError


def squeeze(text):
    """Collapse whitespace for content comparisons."""
    return " ".join(text.split())


class TestObjectMacros:
    def test_simple_define(self):
        out = preprocess("#define N 16\nint x = N;")
        assert "16" in out and "N" not in squeeze(out).replace("16", "")

    def test_define_is_erased_from_output(self):
        out = preprocess("#define N 16\nN")
        assert out.split("\n")[0] == ""

    def test_line_count_preserved(self):
        src = "#define A 1\n\nA\nA"
        out = preprocess(src)
        assert len(out.split("\n")) == len(src.split("\n"))

    def test_recursive_expansion(self):
        out = preprocess("#define A B\n#define B 7\nA")
        assert squeeze(out) == "7"

    def test_self_reference_does_not_loop(self):
        out = preprocess("#define X X + 1\nX")
        assert squeeze(out) == "X + 1"

    def test_undef(self):
        out = preprocess("#define N 5\n#undef N\nN")
        assert squeeze(out) == "N"

    def test_redefinition_takes_latest(self):
        out = preprocess("#define N 1\n#define N 2\nN")
        assert squeeze(out) == "2"

    def test_no_expansion_inside_identifier(self):
        out = preprocess("#define N 5\nint NN = N;")
        assert "NN" in out and "55" not in out

    def test_line_continuation(self):
        out = preprocess("#define SUM 1 + \\\n2\nSUM")
        assert squeeze(out) == "1 + 2"


class TestFunctionMacros:
    def test_basic_call(self):
        out = preprocess("#define SQR(x) ((x) * (x))\nSQR(3)")
        assert squeeze(out) == "((3) * (3))"

    def test_two_parameters(self):
        out = preprocess("#define ADD(a, b) (a + b)\nADD(1, 2)")
        assert squeeze(out) == "(1 + 2)"

    def test_nested_parens_in_argument(self):
        out = preprocess("#define ID(x) x\nID(f(1, 2))")
        assert squeeze(out) == "f(1, 2)"

    def test_argument_expansion(self):
        out = preprocess("#define N 4\n#define ID(x) x\nID(N)")
        assert squeeze(out) == "4"

    def test_name_without_call_left_alone(self):
        out = preprocess("#define F(x) x\nint F = 3;")
        assert "int F = 3" in out

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define ADD(a, b) a+b\nADD(1)")

    def test_zero_arg_macro(self):
        out = preprocess("#define GET() 42\nGET()")
        assert squeeze(out) == "42"


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define ON 1\n#ifdef ON\nyes\n#endif")
        assert "yes" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef OFF\nno\n#endif")
        assert "no" not in out

    def test_ifndef(self):
        out = preprocess("#ifndef OFF\nyes\n#endif")
        assert "yes" in out

    def test_else_branch(self):
        out = preprocess("#ifdef OFF\nno\n#else\nyes\n#endif")
        assert "yes" in out and "no" not in out

    def test_nested_conditionals(self):
        src = ("#define A 1\n#ifdef A\n#ifdef B\nno\n#else\nyes\n#endif\n"
               "#endif")
        out = preprocess(src)
        assert "yes" in out and "no" not in out

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef X\nfoo")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_defines_inside_inactive_branch_ignored(self):
        out = preprocess("#ifdef OFF\n#define N 5\n#endif\nN")
        assert squeeze(out) == "N"


class TestBuildOptions:
    def test_dash_d_with_value(self):
        out = preprocess("N", options="-DN=32")
        assert squeeze(out) == "32"

    def test_dash_d_without_value_defaults_to_1(self):
        out = preprocess("#ifdef FLAG\nyes\n#endif", options="-D FLAG")
        assert "yes" in out

    def test_unknown_options_ignored(self):
        out = preprocess("x", options="-cl-fast-relaxed-math")
        assert squeeze(out) == "x"

    def test_bad_macro_name_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("x", options="-D1BAD=2")


class TestDirectives:
    def test_pragma_ignored(self):
        out = preprocess("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nx")
        assert squeeze(out) == "x"

    def test_include_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include "foo.h"')

    def test_unknown_directive_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#frobnicate")


@given(st.text(alphabet="abcdefghij XY+-*/()0123456789\n", max_size=200))
def test_no_directives_roundtrip(text):
    """Directive-free, macro-free text passes through unchanged."""
    if "#" in text:
        return
    assert preprocess(text) == text
