"""Differential fuzzing of the optimizing middle-end and the engines.

~200 seeded random OpenCL C kernels (integer/uint/float arithmetic,
nested ifs and for loops, selects, barriers with __local staging) are
executed five ways — serial engine at -O0 (tree interpreter, no
middle-end), serial engine at -O2 (optimized bytecode), vector engine
at -O2, and the codegen JIT engine at both -O0 (tree fallback) and
-O2 (generated NumPy code) — and every output buffer must match **bit
for bit**.  Any unsound fold, wrong strength reduction, bad uniformity
tag, bytecode lowering bug or codegen emission bug shows up as a
divergence with a reproducible seed.  The JIT leg must additionally
report cost counters identical to the vector engine's (it is the same
SIMT execution model on a different substrate; the serial engine's
*transaction* counters legitimately differ — CPU model).

Also holds the satellite regression test that the cost model counts
*executed post-optimization* ops: -O2 must report fewer ALU ops than
-cl-opt-disable for a kernel full of foldable arithmetic, while the
memory traffic counters stay identical.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from tests.conftest import run_cl_kernel

_KERNELS_PER_BATCH = 10
_BATCHES = 20                   # 200 kernels total


# -- random kernel generator --------------------------------------------------

class _KernelGen:
    """Seeded random kernel source builder.

    Generated programs are UB-free by construction: every array index
    is reduced into bounds with ``(x % n + n) % n``, divisors and
    shift amounts are positive constants, and barriers only appear in
    top-level (uniform) control flow.
    """

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self.has_barrier = bool(self.rng.random() < 0.4)
        self.lsize = 16
        self.gsize = int(self.rng.choice([32, 48, 64])) \
            if self.has_barrier else int(self.rng.choice([16, 33, 64]))
        self.int_vars = ["gid", "lid", "grp", "i0", "i1", "i2"]
        self.uint_vars = ["u0", "u1"]
        self.float_vars = ["f0", "f1", "f2"]
        self.loop_depth = 0
        self.n_loops = 0

    def _pick(self, seq):
        return seq[int(self.rng.integers(len(seq)))]

    # -- expressions ---------------------------------------------------------

    def int_expr(self, depth: int = 0) -> str:
        if depth >= 3 or self.rng.random() < 0.3:
            if self.rng.random() < 0.3:
                return str(int(self.rng.integers(-6, 13)))
            return self._pick(self.int_vars)
        roll = self.rng.random()
        a = self.int_expr(depth + 1)
        b = self.int_expr(depth + 1)
        if roll < 0.45:
            return f"({a} {self._pick('+-*&|^')} {b})"
        if roll < 0.60:     # safe division / remainder by a constant
            return f"({a} {self._pick(['/', '%'])} " \
                   f"{int(self.rng.integers(1, 9))})"
        if roll < 0.72:     # shifts by small constants
            return f"({a} {self._pick(['<<', '>>'])} " \
                   f"{int(self.rng.integers(0, 4))})"
        if roll < 0.88:
            return f"({a} {self._pick(['<', '>', '<=', '==', '!='])} {b})"
        return f"(({self.int_cond()}) ? {a} : {b})"

    def int_cond(self) -> str:
        return f"{self.int_expr(2)} {self._pick(['<', '>', '!='])} " \
               f"{self.int_expr(2)}"

    def uint_expr(self, depth: int = 0) -> str:
        if depth >= 2 or self.rng.random() < 0.35:
            if self.rng.random() < 0.25:
                return f"{int(self.rng.integers(0, 64))}u"
            return self._pick(self.uint_vars)
        a = self.uint_expr(depth + 1)
        roll = self.rng.random()
        if roll < 0.4:
            return f"({a} {self._pick('+*&|^')} " \
                   f"{self.uint_expr(depth + 1)})"
        if roll < 0.75:     # unsigned div/mod by powers of two hits the
            pow2 = 1 << int(self.rng.integers(1, 5))  # strength reducer
            return f"({a} {self._pick(['/', '%'])} {pow2}u)"
        return f"({a} {self._pick(['<<', '>>'])} " \
               f"{int(self.rng.integers(0, 4))})"

    def float_expr(self, depth: int = 0) -> str:
        if depth >= 3 or self.rng.random() < 0.3:
            if self.rng.random() < 0.25:
                return f"{round(float(self.rng.uniform(-4, 4)), 2)}f"
            if self.rng.random() < 0.3:
                return f"fin[(({self.int_expr(2)}) % n + n) % n]"
            return self._pick(self.float_vars)
        roll = self.rng.random()
        a = self.float_expr(depth + 1)
        b = self.float_expr(depth + 1)
        if roll < 0.5:
            return f"({a} {self._pick('+-*')} {b})"
        if roll < 0.62:     # division by a safely-nonzero constant
            return f"({a} / {round(float(self.rng.uniform(1, 4)), 2)}f)"
        if roll < 0.74:
            return f"{self._pick(['fmin', 'fmax'])}({a}, {b})"
        if roll < 0.86:
            return self._pick([f"sqrt(fabs({a}))", f"fabs({a})"])
        return f"(({self.int_cond()}) ? {a} : {b})"

    # -- statements ----------------------------------------------------------

    def statement(self, depth: int) -> list:
        roll = self.rng.random()
        pad = "    " * (depth + 1)
        if roll < 0.5 or depth >= 2:
            kind = self.rng.random()
            if kind < 0.45:
                return [f"{pad}{self._pick(self.float_vars)} = "
                        f"{self.float_expr()};"]
            if kind < 0.8:
                return [f"{pad}{self._pick(['i0', 'i1', 'i2'])} = "
                        f"{self.int_expr()};"]
            return [f"{pad}{self._pick(self.uint_vars)} = "
                    f"{self.uint_expr()};"]
        if roll < 0.8:
            lines = [f"{pad}if ({self.int_cond()}) {{"]
            for _ in range(int(self.rng.integers(1, 3))):
                lines += self.statement(depth + 1)
            if self.rng.random() < 0.5:
                lines += [f"{pad}}} else {{"]
                for _ in range(int(self.rng.integers(1, 3))):
                    lines += self.statement(depth + 1)
            lines += [f"{pad}}}"]
            return lines
        k = f"k{self.n_loops}"
        self.n_loops += 1
        bound = int(self.rng.integers(2, 5))
        lines = [f"{pad}for (int {k} = 0; {k} < {bound}; {k}++) {{"]
        self.int_vars.append(k)
        for _ in range(int(self.rng.integers(1, 3))):
            lines += self.statement(depth + 1)
        self.int_vars.remove(k)
        lines += [f"{pad}}}"]
        return lines

    def barrier_block(self) -> list:
        """__local staging around a barrier, in uniform control flow.

        The trailing barrier is load-bearing: without it, a later
        re-staging of ``lbuf`` races with this block's cross-lane reads
        and the engines may legally disagree.
        """
        shift = int(self.rng.integers(1, self.lsize))
        return [
            f"    lbuf[lid] = {self._pick(self.float_vars)};",
            "    barrier(CLK_LOCAL_MEM_FENCE);",
            f"    {self._pick(self.float_vars)} = "
            f"lbuf[(lid + {shift}) % {self.lsize}];",
            "    barrier(CLK_LOCAL_MEM_FENCE);",
        ]

    def source(self) -> str:
        body = [
            "    int gid = get_global_id(0);",
            "    int lid = get_local_id(0);",
            "    int grp = get_group_id(0);",
            "    int i0 = iin[gid];",
            "    int i1 = gid * 3 + 1;",
            "    int i2 = iin[(gid + 7) % n];",
            "    uint u0 = (uint)(i0 & 1023);",
            "    uint u1 = (uint)gid * 2654435761u;",
            "    float f0 = fin[gid];",
            "    float f1 = s;",
            "    float f2 = fin[(gid + 3) % n] - 0.5f;",
        ]
        if self.has_barrier:
            body.append(f"    __local float lbuf[{self.lsize}];")
        n_stmts = int(self.rng.integers(4, 9))
        barrier_at = set(self.rng.integers(0, n_stmts, size=2)) \
            if self.has_barrier else set()
        for i in range(n_stmts):
            if i in barrier_at:
                body += self.barrier_block()
            body += self.statement(0)
        body += [
            "    out[gid] = f0 + f1 + f2;",
            "    iout[gid] = i0 + i1 + i2 + (int)(u0 ^ u1);",
        ]
        return ("__kernel void fuzz(__global float* out, "
                "__global int* iout,\n"
                "                   __global const float* fin, "
                "__global const int* iin,\n"
                "                   int n, float s) {\n"
                + "\n".join(body) + "\n}\n")


def _run_config(engine: str, options: str, source: str, gsize, lsize,
                fin, iin, s):
    device = cl.Device(cl.TESLA_C2050, engine)
    out = np.zeros(gsize[0], np.float32)
    iout = np.zeros(gsize[0], np.int32)
    event = run_cl_kernel(device, source, "fuzz",
                          [out, iout, fin.copy(), iin.copy(),
                           np.int32(gsize[0]), np.float32(s)],
                          gsize, lsize, options=options)
    return out, iout, event.counters


@pytest.mark.parametrize("batch", range(_BATCHES))
def test_random_kernels_bit_identical_across_engines(batch):
    """serial-O0 == serial-O2 == vector-O2 == jit-O0 == jit-O2, bit for
    bit, on 10 random kernels per batch (seeds are stable, failures
    name the kernel); jit counters == vector counters, field for
    field."""
    for i in range(_KERNELS_PER_BATCH):
        seed = 1000 + batch * _KERNELS_PER_BATCH + i
        gen = _KernelGen(seed)
        source = gen.source()
        gsize = (gen.gsize,)
        lsize = (gen.lsize,) if gen.has_barrier else None
        rng = np.random.default_rng(seed)
        fin = rng.uniform(0.1, 4.0, gen.gsize).astype(np.float32)
        iin = rng.integers(-100, 100, gen.gsize).astype(np.int32)
        s = round(float(rng.uniform(-2, 2)), 2)

        legs = {
            "serial -O0": _run_config("serial", "-cl-opt-disable",
                                      source, gsize, lsize, fin, iin, s),
            "serial -O2": _run_config("serial", "-O2",
                                      source, gsize, lsize, fin, iin, s),
            "vector -O2": _run_config("vector", "-O2",
                                      source, gsize, lsize, fin, iin, s),
            "jit -O0": _run_config("jit", "-cl-opt-disable",
                                   source, gsize, lsize, fin, iin, s),
            "jit -O2": _run_config("jit", "-O2",
                                   source, gsize, lsize, fin, iin, s),
        }
        ref_name, (ref_out, ref_iout, _c) = next(iter(legs.items()))
        for name, (out, iout, _c) in legs.items():
            # byte-level compare: exact bits, NaN-safe
            assert out.tobytes() == ref_out.tobytes(), (
                f"seed {seed}: float outputs of {name} != {ref_name}\n"
                f"{source}")
            assert iout.tobytes() == ref_iout.tobytes(), (
                f"seed {seed}: int outputs of {name} != {ref_name}\n"
                f"{source}")
        # the jit engine swaps the execution substrate, not the model:
        # every counter (ALU, traffic, transactions, barriers) must
        # match the vector interpreter exactly
        assert vars(legs["jit -O2"][2]) == vars(legs["vector -O2"][2]), (
            f"seed {seed}: jit -O2 counters diverge from vector -O2\n"
            f"{source}")


# -- cost model counts executed, post-optimization ops ------------------------

_FOLDABLE_SRC = """
__kernel void folded(__global float* y, __global const float* x) {
    int i = get_global_id(0);
    int dead = (3 * 4 + 5) * i;
    float zero = 2.0f - 2.0f;
    y[i] = (x[i] * 1.0f + zero) + (float)(8 / 4 - 2);
}
"""


class TestPostOptCosts:
    def test_o2_executes_fewer_ops_than_o0(self, any_engine_device):
        """-O2 folds `x*1`, `2-2`, the dead int chain … so the counters
        (which charge *executed* instructions) must drop, while the
        memory traffic — untouched by the passes — stays identical."""
        n = 64
        x = np.random.default_rng(7).random(n).astype(np.float32)

        def run(options):
            y = np.zeros(n, np.float32)
            event = run_cl_kernel(any_engine_device, _FOLDABLE_SRC,
                                  "folded", [y, x], (n,),
                                  options=options)
            return y, event.counters

        y0, c0 = run("-cl-opt-disable")
        y2, c2 = run("-O2")
        assert y0.tobytes() == y2.tobytes()
        assert c2.alu_ops < c0.alu_ops
        assert c2.global_loads == c0.global_loads
        assert c2.global_stores == c0.global_stores
        assert c2.global_load_bytes == c0.global_load_bytes
        assert c2.global_store_bytes == c0.global_store_bytes
