"""Parser tests."""

import pytest

from repro.clc import ast_nodes as A
from repro.clc.lexer import tokenize
from repro.clc.parser import parse
from repro.errors import ParseError


def parse_src(src):
    return parse(tokenize(src))


def parse_kernel_body(body):
    src = f"__kernel void k(__global int* a) {{ {body} }}"
    unit = parse_src(src)
    return unit.functions[0].body


def first_expr(body):
    stmt = parse_kernel_body(body)[0]
    assert isinstance(stmt, A.ExprStmt)
    return stmt.expr


class TestFunctions:
    def test_kernel_flag(self):
        unit = parse_src("__kernel void k() {}")
        assert unit.functions[0].is_kernel

    def test_plain_helper(self):
        unit = parse_src("float f(float x) { return x; }")
        fn = unit.functions[0]
        assert not fn.is_kernel and fn.return_type.base == "float"

    def test_kernel_keyword_without_underscores(self):
        unit = parse_src("kernel void k() {}")
        assert unit.functions[0].is_kernel

    def test_void_param_list(self):
        unit = parse_src("void f(void) {}")
        assert unit.functions[0].params == []

    def test_param_address_spaces(self):
        unit = parse_src(
            "__kernel void k(__global float* a, __local int* b,"
            " __constant float* c, int n) {}")
        spaces = [p.type_spec.address_space
                  for p in unit.functions[0].params]
        assert spaces == ["global", "local", "constant", "private"]

    def test_pointer_depth(self):
        unit = parse_src("void f(__global float* p) {}")
        assert unit.functions[0].params[0].type_spec.pointer == 1

    def test_multiple_functions(self):
        unit = parse_src("void a() {} void b() {} __kernel void k() {}")
        assert [f.name for f in unit.functions] == ["a", "b", "k"]

    def test_unsigned_int_spelling(self):
        unit = parse_src("void f(unsigned int x) {}")
        assert unit.functions[0].params[0].type_spec.base == "uint"

    def test_missing_brace_raises(self):
        with pytest.raises(ParseError):
            parse_src("void f() { int x = 1;")


class TestStatements:
    def test_declaration_with_init(self):
        stmt = parse_kernel_body("int x = 3;")[0]
        assert isinstance(stmt, A.DeclStmt)
        assert stmt.decls[0].name == "x"
        assert isinstance(stmt.decls[0].init, A.IntLiteral)

    def test_multi_declarator(self):
        stmt = parse_kernel_body("int x = 1, y = 2;")[0]
        assert [d.name for d in stmt.decls] == ["x", "y"]

    def test_array_declaration(self):
        stmt = parse_kernel_body("__local float s[16];")[0]
        decl = stmt.decls[0]
        assert decl.array_size is not None
        assert decl.type_spec.address_space == "local"

    def test_if_else(self):
        stmt = parse_kernel_body("if (a[0]) a[1] = 1; else a[2] = 2;")[0]
        assert isinstance(stmt, A.IfStmt)
        assert len(stmt.then) == 1 and len(stmt.otherwise) == 1

    def test_for_loop_parts(self):
        stmt = parse_kernel_body(
            "for (int i = 0; i < 10; i++) a[i] = i;")[0]
        assert isinstance(stmt, A.ForStmt)
        assert stmt.cond is not None and len(stmt.update) == 1

    def test_for_with_empty_clauses(self):
        stmt = parse_kernel_body("for (;;) break;")[0]
        assert stmt.init == [] and stmt.cond is None and stmt.update == []

    def test_while(self):
        stmt = parse_kernel_body("while (a[0] < 5) a[0] += 1;")[0]
        assert isinstance(stmt, A.WhileStmt)

    def test_do_while(self):
        stmt = parse_kernel_body("do { a[0] += 1; } while (a[0] < 5);")[0]
        assert isinstance(stmt, A.DoWhileStmt)

    def test_break_continue_return(self):
        body = parse_kernel_body(
            "while (1) { if (a[0]) break; continue; } return;")
        assert isinstance(body[-1], A.ReturnStmt)

    def test_nested_blocks(self):
        stmt = parse_kernel_body("{ { a[0] = 1; } }")[0]
        assert isinstance(stmt, A.BlockStmt)

    def test_switch_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("switch (x) {}")

    def test_struct_rejected(self):
        with pytest.raises(ParseError):
            parse_src("struct S { int x; };")

    def test_goto_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("goto done;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = first_expr("f(1 + 2 * 3);")
        arg = expr.args[0]
        assert arg.op == "+" and arg.rhs.op == "*"

    def test_parenthesised_grouping(self):
        expr = first_expr("f((1 + 2) * 3);")
        assert expr.args[0].op == "*"

    def test_comparison_precedence(self):
        expr = first_expr("f(a[0] + 1 < b[0]);")
        assert expr.args[0].op == "<"

    def test_logical_precedence(self):
        expr = first_expr("f(a[0] && b[0] || c[0]);")
        assert expr.args[0].op == "||"

    def test_ternary(self):
        expr = first_expr("f(a[0] ? 1 : 2);")
        assert isinstance(expr.args[0], A.TernaryOp)

    def test_ternary_right_associative(self):
        expr = first_expr("f(a[0] ? 1 : b[0] ? 2 : 3);")
        assert isinstance(expr.args[0].otherwise, A.TernaryOp)

    def test_cast(self):
        expr = first_expr("f((float)a[0]);")
        assert isinstance(expr.args[0], A.CastExpr)

    def test_cast_vs_parenthesised_expr(self):
        expr = first_expr("f((a) + 1);")
        assert expr.args[0].op == "+"

    def test_sizeof(self):
        expr = first_expr("f(sizeof(int));")
        assert isinstance(expr.args[0], A.SizeofExpr)

    def test_unary_minus(self):
        expr = first_expr("f(-a[0]);")
        assert isinstance(expr.args[0], A.UnaryOp)

    def test_chained_index(self):
        stmt = parse_kernel_body("a[a[0]] = 1;")[0]
        assert isinstance(stmt.expr.lhs.index, A.IndexExpr)

    def test_call_with_no_args(self):
        expr = first_expr("f(get_global_id(0));")
        assert expr.args[0].name == "get_global_id"

    def test_augmented_assignment(self):
        stmt = parse_kernel_body("a[0] *= 2;")[0]
        assert stmt.expr.op == "*="

    def test_postfix_increment(self):
        stmt = parse_kernel_body("a[0]++;")[0]
        assert isinstance(stmt.expr, A.PostfixOp)

    def test_address_of_allowed_syntactically(self):
        expr = first_expr("f(&a[0]);")
        assert isinstance(expr.args[0], A.UnaryOp)
        assert expr.args[0].op == "&"

    def test_deref_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("f(*a);")

    def test_member_access_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel_body("f(a.x);")

    def test_shift_expression(self):
        expr = first_expr("f(1 << 4);")
        assert expr.args[0].op == "<<"
