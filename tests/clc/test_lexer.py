"""Tokenizer tests."""

import pytest

from repro.clc.lexer import tokenize
from repro.clc.tokens import (EOF, FLOAT_LIT, IDENT, INT_LIT, KEYWORD,
                              PUNCT)
from repro.errors import LexError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == EOF

    def test_identifier(self):
        tok = tokenize("foo_bar42")[0]
        assert tok.kind == IDENT and tok.value == "foo_bar42"

    def test_keyword_recognised(self):
        assert tokenize("float")[0].kind == KEYWORD

    def test_underscore_prefixed_qualifier_is_keyword(self):
        assert tokenize("__global")[0].kind == KEYWORD

    def test_identifier_looking_like_keyword_prefix(self):
        tok = tokenize("floaty")[0]
        assert tok.kind == IDENT

    @pytest.mark.parametrize("punct", ["+", "-", "*", "/", "%", "==",
                                       "!=", "<=", ">=", "&&", "||",
                                       "<<", ">>", "+=", "-=", "*=",
                                       "/=", "++", "--", "<<=", ">>="])
    def test_punctuators(self, punct):
        tok = tokenize(punct)[0]
        assert tok.kind == PUNCT and tok.value == punct

    def test_greedy_punct_matching(self):
        # `<<=` must lex as one token, not `<<` `=`
        assert values("a <<= b") == ["a", "<<=", "b"]

    def test_plusplus_vs_plus(self):
        assert values("a+++b") == ["a", "++", "+", "b"]


class TestNumericLiterals:
    def test_decimal_int(self):
        tok = tokenize("12345")[0]
        assert tok.kind == INT_LIT and tok.parsed == 12345

    def test_hex_int(self):
        tok = tokenize("0xFF")[0]
        assert tok.kind == INT_LIT and tok.parsed == 255

    def test_unsigned_suffix(self):
        tok = tokenize("42u")[0]
        assert tok.parsed == 42 and "u" in tok.suffix

    def test_long_suffix(self):
        tok = tokenize("42L")[0]
        assert "l" in tok.suffix

    def test_ulong_suffix(self):
        tok = tokenize("42UL")[0]
        assert tok.suffix == "ul"

    def test_simple_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == FLOAT_LIT and tok.parsed == 3.25

    def test_float_f_suffix(self):
        tok = tokenize("1.5f")[0]
        assert tok.kind == FLOAT_LIT and tok.suffix == "f"

    def test_int_with_f_suffix_is_float(self):
        tok = tokenize("2f")[0]
        assert tok.kind == FLOAT_LIT and tok.parsed == 2.0

    def test_exponent(self):
        tok = tokenize("1e3")[0]
        assert tok.kind == FLOAT_LIT and tok.parsed == 1000.0

    def test_negative_exponent(self):
        tok = tokenize("2.5e-2")[0]
        assert tok.parsed == 0.025

    def test_float_starting_with_dot(self):
        tok = tokenize(".5")[0]
        assert tok.kind == FLOAT_LIT and tok.parsed == 0.5

    def test_trailing_dot(self):
        tok = tokenize("7.")[0]
        assert tok.kind == FLOAT_LIT and tok.parsed == 7.0

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* b c */ d") == ["a", "d"]

    def test_multiline_block_comment(self):
        assert values("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_numbers(self):
        toks = tokenize("a\nbb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1 and toks[1].col == 4

    def test_lines_advance_through_comments(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_kernel_fragment(self):
        src = "__kernel void f(__global float* x) { x[0] = 1.0f; }"
        ks = kinds(src)
        assert ks[-1] == EOF and IDENT in ks and FLOAT_LIT in ks
