"""Line debug info must survive the pass pipeline and lowering.

The profiler attributes cost through ``Instr.line``, so the pipeline
asserts (``verify_line_info``) that a fully annotated source tree never
lowers to an instruction without a line.  These tests drive the check
through real compilations — including the implicit-conversion sites the
lowerer materializes itself — and prove it actually bites on a dropped
line.
"""

from __future__ import annotations

import pytest

from repro.clc import compile_source
from repro.clc.passes.manager import (optimize_program,
                                      verify_line_info)

#: implicit int->float conversions at decl, store and return sites —
#: the lowerer inserts the casts, so it must stamp the statement line
CONVERTING = """float widen(int v)
{
    float f = v;
    return f;
}

__kernel void k(__global float* out, int n)
{
    int i = get_global_id(0);
    out[i] = widen(n) + i;
}
"""

BRANCHY = """__kernel void k(__global int* out)
{
    int i = get_global_id(0);
    int acc = 0;
    if (i > 4) {
        acc = i * 3 + 1;
    } else {
        acc = i / 2;
    }
    while (acc > 100) {
        acc = acc - 7;
    }
    out[i] = acc;
}
"""


def _lowered(source, level=2):
    program = optimize_program(compile_source(source), level)
    assert program.bytecode is not None
    return program


@pytest.mark.parametrize("source", [CONVERTING, BRANCHY],
                         ids=["conversions", "branches"])
@pytest.mark.parametrize("level", [1, 2])
def test_every_counted_instr_has_a_line(source, level):
    program = _lowered(source, level)
    for name, bc in program.bytecode.functions.items():
        for ins in bc.instrs:
            if ins.op in ("const", "wiq"):
                continue
            assert ins.line > 0, (name, ins)


def test_verify_passes_on_real_compilation():
    verify_line_info(_lowered(CONVERTING))


def test_verify_raises_on_dropped_line():
    program = _lowered(BRANCHY)
    victims = [ins for ins in program.bytecode.functions["k"].instrs
               if ins.op not in ("const", "wiq")]
    assert victims
    saved = victims[0].line
    victims[0].line = 0
    with pytest.raises(AssertionError, match="dropped line info"):
        verify_line_info(program)
    victims[0].line = saved


def test_verify_skips_unannotated_trees():
    """Synthetic IR without line info (tests, tools) is not an error."""
    program = _lowered(BRANCHY)
    func = program.functions["k"]
    func.body[0].line = 0                     # tree no longer annotated
    for ins in program.bytecode.functions["k"].instrs:
        ins.line = 0
    verify_line_info(program)                 # must not raise


def test_optimize_program_runs_the_check():
    program = _lowered(CONVERTING)
    optimize_program(program, 2)              # idempotent, still clean
    assert program.bytecode is not None
