"""Async cluster_eval: deferred event-graph execution across devices."""

import numpy as np
import pytest

import repro.hpl as hpl
from repro.errors import HPLError
from repro.hpl import Float, Int, float_, idx
from repro.hpl.cluster import (Cluster, DistributedArray, cluster_eval,
                               timeline_of)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def saxpy_part(y, x, a, offset, count):
    y[idx] = a * x[idx] + y[idx]


def _dist_pair(rng, n=256):
    c = Cluster()
    xs = rng.random(n).astype(np.float32)
    ys = rng.random(n).astype(np.float32)
    dx = DistributedArray(float_, n, c, data=xs)
    dy = DistributedArray(float_, n, c, data=ys)
    return c, xs, ys, dx, dy


class TestDeferredClusterEval:
    def test_deferred_matches_eager_numerically(self, rng):
        c, xs, ys, dx, dy = _dist_pair(rng)
        cluster_eval(saxpy_part, c, dy, dx, Float(2.0), deferred=True)
        deferred = dy.gather().copy()

        c2, _xs2, _ys2, dx2, dy2 = _dist_pair(rng)
        dx2.scatter(xs)
        dy2.scatter(ys)
        cluster_eval(saxpy_part, c2, dy2, dx2, Float(2.0),
                     deferred=False)
        assert np.array_equal(deferred, dy2.gather())
        assert np.allclose(deferred, 2.0 * xs + ys, rtol=1e-5)

    def test_all_events_complete_on_return(self, rng):
        c, _xs, _ys, dx, dy = _dist_pair(rng)
        results = cluster_eval(saxpy_part, c, dy, dx, Float(2.0))
        assert len(results) == len(c)
        for r in results:
            assert r.complete
            assert all(e.is_complete for e in r.events)

    def test_devices_restored_to_eager_after(self, rng):
        c, _xs, _ys, dx, dy = _dist_pair(rng)
        assert all(not d.deferred for d in c.devices)
        cluster_eval(saxpy_part, c, dy, dx, Float(2.0), deferred=True)
        assert all(not d.deferred for d in c.devices)

    def test_partition_timelines_overlap(self, rng):
        # the acceptance criterion: with deferred event-graph
        # execution, the cluster makespan must beat running the same
        # partitions back to back
        c, _xs, _ys, dx, dy = _dist_pair(rng, n=1 << 12)
        results = []
        for _ in range(4):
            results += cluster_eval(saxpy_part, c, dy, dx, Float(2.0),
                                    deferred=True)
        tl = timeline_of(results)
        assert set(tl.busy_seconds) == {d.label for d in c.devices}
        assert tl.serialized_seconds == pytest.approx(
            sum(tl.busy_seconds.values()))
        assert tl.makespan_seconds < tl.serialized_seconds
        assert tl.overlap_factor > 1.0

    def test_timeline_of_rejects_empty(self):
        with pytest.raises(HPLError):
            timeline_of([])


class TestBroadcastWriteDetection:
    def test_written_broadcast_array_rejected(self, rng):
        # `acc` is a plain Array broadcast to every device; each
        # partition would scribble over the same logical data
        def bad(y, acc, offset, count):
            acc[idx] = y[idx]

        c = Cluster()
        dy = DistributedArray(float_, 64, c,
                              data=rng.random(64).astype(np.float32))
        acc = hpl.Array(float_, 64 // len(c))
        with pytest.raises(HPLError, match="broadcast.*acc"):
            cluster_eval(bad, c, dy, acc)

    def test_read_only_broadcast_array_allowed(self, rng):
        def add_table(y, table, offset, count):
            y[idx] = y[idx] + table[idx]

        c = Cluster()
        ys = rng.random(64).astype(np.float32)
        dy = DistributedArray(float_, 64, c, data=ys)
        table = hpl.Array(float_, 64 // len(c))
        tvals = rng.random(64 // len(c)).astype(np.float32)
        table.data[:] = tvals
        cluster_eval(add_table, c, dy, table)
        expected = ys + np.tile(tvals, len(c))
        assert np.allclose(dy.gather(), expected, rtol=1e-5)

    def test_written_broadcast_scalar_still_fine(self, rng):
        def scale(y, s, offset, count):
            y[idx] = y[idx] * s

        c = Cluster()
        ys = rng.random(64).astype(np.float32)
        dy = DistributedArray(float_, 64, c, data=ys)
        cluster_eval(scale, c, dy, Float(3.0))
        assert np.allclose(dy.gather(), 3.0 * ys, rtol=1e-5)


class TestOffsetThreading:
    def test_offsets_correct_in_deferred_mode(self):
        def fill_global_index(out, offset, count):
            out[idx] = offset + idx

        c = Cluster()
        d = DistributedArray(float_, 96, c)
        cluster_eval(fill_global_index, c, d, deferred=True)
        assert np.array_equal(d.gather(), np.arange(96))

    def test_scalar_offset_snapshot_per_partition(self):
        # offset/count are rebuilt per rank; deferred h2d must snapshot
        # each value, not alias one mutated host buffer
        def write_count(out, offset, count):
            out[idx] = count * 1000 + offset

        c = Cluster()
        d = DistributedArray(float_, 10, c)   # uneven: 5 + 5 or similar
        cluster_eval(write_count, c, d, deferred=True)
        gathered = d.gather()
        for (lo, hi) in c.partition_bounds(10):
            expected = (hi - lo) * 1000 + lo
            assert np.all(gathered[lo:hi] == expected)
