"""Host Array semantics and host/device coherence (transfer minimisation).

The paper (§V-B, §VI) credits HPL with analysing kernels to minimise
data transfers; these tests pin the observable behaviour: what gets
copied when, and that stale copies are never read.
"""

import numpy as np
import pytest

import repro.hpl as hpl
from repro.errors import HPLError, KernelCaptureError
from repro.hpl import Array, Double, double_, float_, get_runtime, idx, int_


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def write_one(a):
    a[idx] = a[idx] + 1.0


def read_into(dst, src):
    dst[idx] = src[idx]


class TestHostArrayBasics:
    def test_shape_and_sizes(self):
        a = Array(float_, 4, 8)
        assert a.shape == (4, 8) and a.ndim == 2
        assert a.size == 32 and a.nbytes == 128

    def test_scalar_shape_rejected(self):
        with pytest.raises(HPLError):
            Array(float_)

    def test_bad_dtype_rejected(self):
        with pytest.raises(HPLError):
            Array(np.float32, 8)

    def test_paren_indexing(self):
        a = Array(int_, 3, 3)
        a.data[:] = np.arange(9).reshape(3, 3)
        assert a(1, 2) == 5

    def test_bracket_indexing_read_only_view(self):
        a = Array(int_, 4)
        a.data[:] = [1, 2, 3, 4]
        view = a[1:3]
        assert view.tolist() == [2, 3]
        with pytest.raises(ValueError):
            view[0] = 9

    def test_setitem(self):
        a = Array(int_, 4)
        a[2] = 7
        assert a(2) == 7

    def test_fill(self):
        a = Array(float_, 5).fill(2.5)
        assert np.all(a.read() == 2.5)

    def test_user_storage_wrapping(self):
        backing = np.arange(6, dtype=np.float64)
        a = Array(double_, 6, data=backing)
        a[0] = 99.0
        assert backing[0] == 99.0

    def test_user_storage_dtype_mismatch_rejected(self):
        with pytest.raises(HPLError, match="dtype"):
            Array(double_, 4, data=np.zeros(4, np.float32))

    def test_user_storage_size_mismatch_rejected(self):
        with pytest.raises(HPLError, match="elements"):
            Array(double_, 4, data=np.zeros(5))

    def test_len(self):
        assert len(Array(int_, 7)) == 7

    def test_host_array_captured_in_kernel_rejected(self):
        host = Array(int_, 4)

        def k(a):
            a[idx] = host[0]    # capturing a host array, not a proxy

        with pytest.raises(Exception):
            hpl.eval(k)(Array(int_, 4))


class TestCoherence:
    def test_kernel_write_invalidates_host(self):
        a = Array(double_, 8).fill(1.0)
        hpl.eval(write_one)(a)
        assert np.all(a.read() == 2.0)

    def test_read_only_arg_not_retransferred(self):
        src = Array(double_, 8).fill(3.0)
        dst = Array(double_, 8)
        rt = get_runtime()
        hpl.eval(read_into)(dst, src)
        h2d_after_first = rt.stats.h2d_transfers
        hpl.eval(read_into)(dst, src)
        # src is still valid on the device: no new host->device copy
        assert rt.stats.h2d_transfers == h2d_after_first

    def test_host_write_forces_retransfer(self):
        src = Array(double_, 8).fill(3.0)
        dst = Array(double_, 8)
        rt = get_runtime()
        hpl.eval(read_into)(dst, src)
        before = rt.stats.h2d_transfers
        src[0] = 4.0   # host write invalidates the device copy
        hpl.eval(read_into)(dst, src)
        assert rt.stats.h2d_transfers == before + 1
        assert dst(0) == 4.0

    def test_write_only_arg_not_copied_in(self):
        dst = Array(double_, 8)
        src = Array(double_, 8).fill(1.0)
        rt = get_runtime()
        hpl.eval(read_into)(dst, src)
        # only src (read) was transferred, dst (written) was not
        assert rt.stats.h2d_transfers == 1

    def test_device_result_read_back_once(self):
        a = Array(double_, 8).fill(0.0)
        rt = get_runtime()
        hpl.eval(write_one)(a)
        assert rt.stats.d2h_transfers == 0
        a.read()
        assert rt.stats.d2h_transfers == 1
        a.read()   # host copy still valid
        assert rt.stats.d2h_transfers == 1

    def test_data_property_conservatively_invalidates(self):
        src = Array(double_, 8).fill(3.0)
        dst = Array(double_, 8)
        rt = get_runtime()
        hpl.eval(read_into)(dst, src)
        before = rt.stats.h2d_transfers
        _ = src.data       # writable alias: HPL must assume mutation
        hpl.eval(read_into)(dst, src)
        assert rt.stats.h2d_transfers == before + 1

    def test_chained_kernels_keep_data_on_device(self):
        a = Array(double_, 8).fill(0.0)
        rt = get_runtime()
        for _ in range(5):
            hpl.eval(write_one)(a)
        # a is read+written: one initial upload, then it stays put
        assert rt.stats.h2d_transfers == 1
        assert np.all(a.read() == 5.0)

    def test_two_devices_each_get_a_copy(self):
        devs = hpl.get_devices()
        gpus = [d for d in devs if not d.is_cpu]
        if len(gpus) < 2:
            pytest.skip("needs two non-CPU devices")
        src = Array(float_, 8).fill(1.0)
        dst = Array(float_, 8)

        def copy_k(d, s):
            d[idx] = s[idx]

        hpl.eval(copy_k).device(gpus[0])(dst, src)
        assert np.all(dst.read() == 1.0)
        dst2 = Array(float_, 8)
        hpl.eval(copy_k).device(gpus[1])(dst2, src)
        assert np.all(dst2.read() == 1.0)

    def test_result_written_on_one_device_readable_after_other_eval(self):
        devs = [d for d in hpl.get_devices() if not d.is_cpu]
        if len(devs) < 2:
            pytest.skip("needs two non-CPU devices")
        a = Array(double_, 8).fill(0.0)
        hpl.eval(write_one).device(devs[0])(a)
        hpl.eval(write_one).device(devs[0])(a)
        assert np.all(a.read() == 2.0)

    def test_stats_track_bytes(self):
        a = Array(double_, 100).fill(1.0)
        rt = get_runtime()
        hpl.eval(write_one)(a)
        assert rt.stats.h2d_bytes == 800
