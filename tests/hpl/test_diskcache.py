"""Persistent cross-process kernel binary cache (repro.hpl.diskcache)."""

import json
import os
import subprocess
import sys
import threading
import time
import zlib
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.hpl as hpl
from repro import trace
from repro.clc import compile_source
from repro.clc.ir import _IR_MAGIC, IR_SCHEMA_VERSION, ProgramIR
from repro.errors import IRSchemaError
from repro.hpl import Array, Float, float_, idx, reset_runtime
from repro.hpl.diskcache import (KernelDiskCache, active_cache, cache_key,
                                 main)

SOURCE = """
__kernel void scale(__global float* y, float a) {
    int i = get_global_id(0);
    y[i] = y[i] * a;
}
"""


@pytest.fixture()
def disk_cache(tmp_path):
    """A configured disk cache; global activation restored afterwards."""
    from repro.hpl import diskcache

    saved = (diskcache._active, diskcache._configured)
    cache = hpl.configure(cache_dir=tmp_path / "kernels")
    yield cache
    diskcache._active, diskcache._configured = saved


def _counter(name):
    return trace.get_registry().counter(name).value


def _farray(n=64, value=3.0):
    a = Array(float_, n)
    a.data[:] = np.float32(value)
    return a


def _scale_kernel():
    def scale(y, a):
        y[idx] = y[idx] * a

    return scale


# -- IR serialization ---------------------------------------------------------

class TestIRSerialization:
    def test_roundtrip_preserves_compiled_program(self):
        ir = compile_source(SOURCE)
        clone = ProgramIR.from_bytes(ir.to_bytes())
        assert isinstance(clone, ProgramIR)
        assert sorted(clone.kernels) == sorted(ir.kernels)
        assert clone.to_bytes() == ir.to_bytes()

    def test_bad_magic_rejected(self):
        with pytest.raises(IRSchemaError, match="magic"):
            ProgramIR.from_bytes(b"NOTIR" + b"x" * 32)

    def test_truncated_blob_rejected(self):
        blob = compile_source(SOURCE).to_bytes()
        with pytest.raises(IRSchemaError):
            ProgramIR.from_bytes(blob[: len(blob) // 2])

    def test_schema_version_mismatch_rejected_not_crash(self):
        blob = compile_source(SOURCE).to_bytes()
        doc = json.loads(zlib.decompress(blob[len(_IR_MAGIC):]))
        assert doc["schema"] == IR_SCHEMA_VERSION
        doc["schema"] = IR_SCHEMA_VERSION + 1
        tampered = _IR_MAGIC + zlib.compress(
            json.dumps(doc).encode("utf-8"))
        with pytest.raises(IRSchemaError, match="schema"):
            ProgramIR.from_bytes(tampered)


# -- the store itself ---------------------------------------------------------

class TestKernelDiskCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        ir = compile_source(SOURCE)
        key = cache.key_of(SOURCE, "", ("fp64",))
        assert cache.get(key) is None
        cache.put(key, ir)
        hit = cache.get(key)
        assert hit is not None
        assert hit.to_bytes() == ir.to_bytes()

    def test_key_sensitive_to_every_input(self):
        base = cache_key(SOURCE, "", ("fp64",))
        assert cache_key(SOURCE + " ", "", ("fp64",)) != base
        assert cache_key(SOURCE, "-DN=4", ("fp64",)) != base
        assert cache_key(SOURCE, "", ("nofp64",)) != base

    def test_corrupt_entry_is_dropped_and_counted_as_miss(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        key = cache.key_of(SOURCE)
        entry = cache._entry_path(key)
        entry.write_bytes(b"torn garbage, not an IR blob")
        misses = _counter("hpl.disk_cache_misses")
        assert cache.get(key) is None
        assert _counter("hpl.disk_cache_misses") == misses + 1
        assert not entry.exists()

    def test_stale_schema_entry_invalidated(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        ir = compile_source(SOURCE)
        key = cache.key_of(SOURCE)
        blob = ir.to_bytes()
        doc = json.loads(zlib.decompress(blob[len(_IR_MAGIC):]))
        doc["schema"] = IR_SCHEMA_VERSION + 1
        cache._entry_path(key).write_bytes(
            _IR_MAGIC + zlib.compress(json.dumps(doc).encode("utf-8")))
        assert cache.get(key) is None        # rejected, not crashed
        assert not cache._entry_path(key).exists()
        cache.put(key, ir)                   # caller recompiles + overwrites
        assert cache.get(key) is not None

    def test_lru_eviction_drops_oldest(self, tmp_path):
        ir = compile_source(SOURCE)
        entry_size = len(ir.to_bytes())
        cache = KernelDiskCache(tmp_path, max_bytes=3 * entry_size)
        keys = [cache.key_of(SOURCE, f"-DV={i}") for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, ir)
            os.utime(cache._entry_path(key), (i, i))  # deterministic ages
        kept = {k for k, _s, _m in cache.entries()}
        assert kept == set(keys[2:])         # two oldest evicted
        assert sum(s for _k, s, _m in cache.entries()) <= cache.max_bytes

    def test_hit_refreshes_lru_position(self, tmp_path):
        ir = compile_source(SOURCE)
        entry_size = len(ir.to_bytes())
        cache = KernelDiskCache(tmp_path, max_bytes=2 * entry_size)
        a, b = (cache.key_of(SOURCE, f"-DV={i}") for i in "ab")
        cache.put(a, ir)
        cache.put(b, ir)
        os.utime(cache._entry_path(a), (1, 1))
        os.utime(cache._entry_path(b), (2, 2))
        now = time.time()
        assert cache.get(a) is not None      # touch: a becomes newest
        assert cache._entry_path(a).stat().st_mtime >= now - 60
        cache.put(cache.key_of(SOURCE, "-DV=c"), ir)
        kept = {k for k, _s, _m in cache.entries()}
        assert a in kept and b not in kept

    def test_purge_and_stats(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        ir = compile_source(SOURCE)
        cache.put(cache.key_of(SOURCE), ir)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert cache.purge() == 1
        assert cache.stats()["entries"] == 0


# -- concurrency --------------------------------------------------------------

class TestConcurrentWriters:
    def test_threaded_writers_never_tear_reads(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        ir = compile_source(SOURCE)
        key = cache.key_of(SOURCE)
        blob = ir.to_bytes()
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    cache.put(key, ir)
                    got = cache.get(key)
                    # every read sees a complete blob or a clean miss
                    if got is not None and got.to_bytes() != blob:
                        errors.append("torn read")
            except Exception as exc:       # noqa: BLE001 - fail the test
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_process_writers_never_tear_reads(self, tmp_path):
        script = (
            "import sys\n"
            "from repro.clc import compile_source\n"
            "from repro.hpl.diskcache import KernelDiskCache\n"
            f"src = {SOURCE!r}\n"
            "ir = compile_source(src)\n"
            "blob = ir.to_bytes()\n"
            f"cache = KernelDiskCache({str(tmp_path)!r})\n"
            "key = cache.key_of(src)\n"
            "for _ in range(20):\n"
            "    cache.put(key, ir)\n"
            "    got = cache.get(key)\n"
            "    assert got is None or got.to_bytes() == blob\n"
            "print('ok')\n"
        )
        procs = [subprocess.Popen([sys.executable, "-c", script],
                                  env=_child_env(), text=True,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
                 for _ in range(4)]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"


# -- runtime integration ------------------------------------------------------

class TestRuntimeIntegration:
    def test_fresh_runtime_reuses_disk_entry(self, disk_cache,
                                             fresh_runtime):
        compiles = _counter("clc.compiles")
        hits = _counter("hpl.disk_cache_hits")
        hpl.eval(_scale_kernel())(_farray(value=3.0), Float(2.0))
        assert _counter("clc.compiles") == compiles + 1

        reset_runtime()                     # in-memory caches gone
        a = _farray(value=3.0)
        hpl.eval(_scale_kernel())(a, Float(2.0))
        assert _counter("clc.compiles") == compiles + 1   # no recompile
        assert _counter("hpl.disk_cache_hits") >= hits + 1
        np.testing.assert_allclose(a.data, 6.0)

    def test_stats_facade_exposes_disk_counters(self, disk_cache,
                                                fresh_runtime):
        from repro.hpl import get_runtime

        hpl.eval(_scale_kernel())(_farray(), Float(2.0))
        stats = get_runtime().stats
        assert stats.disk_cache_misses >= 1
        assert stats.disk_cache_bytes > 0

    def test_disabled_cache_still_compiles(self, tmp_path, fresh_runtime):
        from repro.hpl import diskcache

        saved = (diskcache._active, diskcache._configured)
        try:
            hpl.configure(cache_dir=None)
            a = _farray(value=5.0)
            hpl.eval(_scale_kernel())(a, Float(2.0))
            np.testing.assert_allclose(a.data, 10.0)
        finally:
            diskcache._active, diskcache._configured = saved


# -- cross-process reuse ------------------------------------------------------

_CHILD = """
import json
import numpy as np
import repro.hpl as hpl
from repro import trace
from repro.hpl import Array, Float, float_, idx

def scale(y, a):
    y[idx] = y[idx] * a

a = Array(float_, 64)
a.data[:] = np.float32(3.0)
hpl.eval(scale)(a, Float(2.0))
registry = trace.get_registry()
print(json.dumps({
    "checksum": float(a.data.sum()),
    "clc_compiles": registry.counter("clc.compiles").value,
    "disk_cache_hits": registry.counter("hpl.disk_cache_hits").value,
    "disk_cache_misses":
        registry.counter("hpl.disk_cache_misses").value,
}))
"""


def _child_env(cache_dir=None):
    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if cache_dir is not None:
        env["HPL_CACHE_DIR"] = str(cache_dir)
    return env


def _run_child(cache_dir):
    proc = subprocess.run([sys.executable, "-c", _CHILD],
                          env=_child_env(cache_dir),
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestCrossProcessReuse:
    def test_second_process_hits_and_skips_compile(self, tmp_path):
        cold = _run_child(tmp_path)
        assert cold["clc_compiles"] == 1
        assert cold["disk_cache_hits"] == 0
        assert cold["disk_cache_misses"] == 1

        warm = _run_child(tmp_path)
        assert warm["clc_compiles"] == 0     # served entirely from disk
        assert warm["disk_cache_hits"] == 1
        assert warm["disk_cache_misses"] == 0
        assert warm["checksum"] == cold["checksum"]


# -- CLI ----------------------------------------------------------------------

class TestCLI:
    def test_ls_stats_purge(self, tmp_path, capsys):
        cache = KernelDiskCache(tmp_path)
        key = cache.key_of(SOURCE)
        cache.put(key, compile_source(SOURCE))

        assert main(["ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert key in out and "1 entry" in out

        assert main(["stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1

        assert main(["purge", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert cache.entries() == []

    def test_missing_cache_dir_errors(self, monkeypatch):
        monkeypatch.delenv("HPL_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["ls"])

    def test_env_var_activates_cache(self, tmp_path, monkeypatch):
        from repro.hpl import diskcache

        saved = (diskcache._active, diskcache._configured)
        try:
            diskcache._active, diskcache._configured = None, False
            monkeypatch.setenv("HPL_CACHE_DIR", str(tmp_path))
            cache = active_cache()
            assert cache is not None
            assert cache.path == tmp_path
        finally:
            diskcache._active, diskcache._configured = saved


# -- lock lifecycle -----------------------------------------------------------

class TestLockLifecycle:
    def test_purge_keeps_lock_file(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        cache.put(cache.key_of(SOURCE), compile_source(SOURCE))
        with cache._locked():
            pass                        # materializes .lock
        assert (tmp_path / ".lock").exists()
        assert cache.purge() == 1
        # the flock target must survive: a concurrent _locked() holder
        # has this very inode locked, and replacing it would let two
        # processes hold "the" lock at once
        assert (tmp_path / ".lock").exists()
        assert cache.entries() == []

    def test_purge_sweeps_stale_tmp_files(self, tmp_path):
        cache = KernelDiskCache(tmp_path)
        stale = tmp_path / ".deadbeef.1234.5678.tmp"
        stale.write_bytes(b"abandoned by a killed writer")
        cache.purge()
        assert not stale.exists()

    def test_locked_reacquires_after_foreign_unlink(self, tmp_path,
                                                    monkeypatch):
        # a foreign `rm .lock` + recreate while we block on flock must
        # not void mutual exclusion: we would hold an orphaned inode
        # while the next locker flocks the new file.  Provoke exactly
        # that window and check _locked() retries onto the new file.
        from repro.hpl import diskcache

        cache = KernelDiskCache(tmp_path)
        lock = tmp_path / ".lock"
        real_flock = diskcache.fcntl.flock
        raced = {"n": 0}

        def racy_flock(fd, op):
            if op == diskcache.fcntl.LOCK_EX and raced["n"] == 0:
                raced["n"] += 1
                # our fd keeps the old inode alive, so the recreated
                # file is guaranteed to be a different inode
                lock.unlink()
                lock.write_bytes(b"")
            return real_flock(fd, op)

        monkeypatch.setattr(diskcache.fcntl, "flock", racy_flock)
        entered = False
        with cache._locked():
            entered = True
        assert entered and raced["n"] == 1
        assert lock.exists()

    def test_eviction_skips_entry_touched_after_scan(self, tmp_path,
                                                     monkeypatch):
        # a same-key store that lands between the eviction scan and the
        # unlink refreshes the entry's mtime; eviction must re-stat and
        # leave the fresh entry alone
        cache = KernelDiskCache(tmp_path, max_bytes=1)
        key = cache.key_of(SOURCE)
        blob_path = tmp_path / (key + ".irbin")
        cache.put(key, compile_source(SOURCE))   # evicts itself (cap=1B)
        assert not blob_path.exists()

        program = compile_source(SOURCE)
        blob_path.write_bytes(program.to_bytes())
        os.utime(blob_path, (1.0, 1.0))

        real_entries = cache._all_entries

        def entries_then_touch():
            scanned = real_entries()
            # concurrent writer replaces the entry before the unlink
            os.utime(blob_path, (2.0, 2.0))
            return scanned

        monkeypatch.setattr(cache, "_all_entries", entries_then_touch)
        with cache._locked():
            cache._evict_lru()
        assert blob_path.exists()       # re-stat saw the newer mtime

    def test_eviction_tolerates_entry_removed_after_scan(self, tmp_path,
                                                         monkeypatch):
        cache = KernelDiskCache(tmp_path, max_bytes=1)
        key = cache.key_of(SOURCE)
        blob_path = tmp_path / (key + ".irbin")
        program = compile_source(SOURCE)
        blob_path.write_bytes(program.to_bytes())

        real_entries = cache._all_entries

        def entries_then_remove():
            scanned = real_entries()
            blob_path.unlink()          # concurrent purge got it first
            return scanned

        monkeypatch.setattr(cache, "_all_entries", entries_then_remove)
        with cache._locked():
            cache._evict_lru()          # must not raise
        assert real_entries() == []
