"""Kernel capture (tracing) and OpenCL C generation tests.

These use the runtime's ``get_captured`` so they inspect the generated
source without executing anything.
"""

import pytest

import repro.hpl as hpl
from repro.errors import KernelCaptureError
from repro.hpl import (Array, Double, Float, Int, barrier, break_, cast,
                       continue_, double_, elif_, else_, endfor_, endif_,
                       endwhile_, float_, for_, gidx, idx, idy, if_, int_,
                       lidx, return_, sqrt, where, while_, LOCAL, Local)
from repro.hpl.runtime import get_runtime


def capture(func, *args):
    return get_runtime().get_captured(func, args)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestBasicCapture:
    def test_saxpy_source(self):
        def saxpy(y, x, a):
            y[idx] = a * x[idx] + y[idx]

        y = Array(double_, 16)
        x = Array(double_, 16)
        cap = capture(saxpy, y, x, Double(2.0))
        assert "__kernel void saxpy" in cap.source
        assert "get_global_id(0)" in cap.source
        assert "__global double* y" in cap.source
        assert "double a" in cap.source

    def test_read_only_params_marked_const(self):
        def k(dst, src):
            dst[idx] = src[idx]

        cap = capture(k, Array(float_, 8), Array(float_, 8))
        assert "__global const float* src" in cap.source
        assert "__global float* dst" in cap.source

    def test_float_literals_adapt_to_float_context(self):
        def k(a):
            a[idx] = a[idx] * 0.5

        cap = capture(k, Array(float_, 8))
        assert "0.5f" in cap.source
        assert not capture(k, Array(float_, 8)).info.uses_double

    def test_double_literal_context(self):
        def k(a):
            a[idx] = a[idx] * 0.5

        cap = capture(k, Array(double_, 8))
        assert "0.5;" in cap.source or "0.5 " in cap.source
        assert cap.info.uses_double

    def test_scalar_inference_from_python_numbers(self):
        def k(a, s, f):
            a[idx] = a[idx] * f + s

        cap = capture(k, Array(double_, 4), 3, 2.5)
        assert "int s" in cap.source and "double f" in cap.source

    def test_2d_array_linearized_with_strides(self):
        def k(dst, src):
            dst[idx][idy] = src[idy][idx]

        cap = capture(k, Array(float_, 8, 4), Array(float_, 4, 8))
        assert "* 4" in cap.source and "* 8" in cap.source

    def test_constant_memory_param(self):
        def k(dst, lut):
            dst[idx] = lut[idx]

        cap = capture(k, Array(float_, 8),
                      Array(float_, 8, mem=hpl.Constant))
        assert "__constant" in cap.source

    def test_kernel_returning_value_rejected(self):
        def bad(a):
            a[idx] = 1
            return 42

        with pytest.raises(KernelCaptureError, match="returned a value"):
            capture(bad, Array(int_, 4))

    def test_kernel_with_no_statements_rejected(self):
        def empty(a):
            pass

        with pytest.raises(KernelCaptureError, match="no statements"):
            capture(empty, Array(int_, 4))

    def test_wrong_arity_rejected(self):
        def k(a, b):
            a[idx] = b[idx]

        with pytest.raises(KernelCaptureError, match="parameter"):
            capture(k, Array(int_, 4))

    def test_cache_hits_by_signature(self):
        def k(a):
            a[idx] = 1

        rt = get_runtime()
        c1 = capture(k, Array(int_, 4))
        c2 = capture(k, Array(int_, 999))      # same 1-D signature
        assert c1 is c2
        c3 = capture(k, Array(float_, 4))      # different dtype
        assert c3 is not c1

    def test_2d_shape_participates_in_signature(self):
        def k(a):
            a[idx][idy] = 1

        c1 = capture(k, Array(int_, 4, 4))
        c2 = capture(k, Array(int_, 4, 8))
        assert c1 is not c2


class TestControlFlowCapture:
    def test_if_elif_else_chain(self):
        def k(a):
            if_(idx < 2)
            a[idx] = 1
            elif_(idx < 4)
            a[idx] = 2
            else_()
            a[idx] = 3
            endif_()

        src = capture(k, Array(int_, 8)).source
        assert "if (" in src and "else if (" in src and "else {" in src

    def test_for_loop_source(self):
        def k(a):
            i = Int()
            for_(i, 0, 10, 2)
            a[idx] += i
            endfor_()

        src = capture(k, Array(int_, 4)).source
        assert "+= 2" in src and "< 10" in src

    def test_negative_step_flips_comparison(self):
        def k(a):
            i = Int()
            for_(i, 10, 0, -1)
            a[idx] += i
            endfor_()

        src = capture(k, Array(int_, 4)).source
        assert "> 0" in src

    def test_while_break_continue_return(self):
        def k(a):
            i = Int(0)
            while_(i < 100)
            i += 1
            if_(i == 3)
            continue_()
            endif_()
            if_(i > 5)
            break_()
            endif_()
            endwhile_()
            if_(idx == 0)
            return_()
            endif_()
            a[idx] = i

        src = capture(k, Array(int_, 4)).source
        assert "break;" in src and "continue;" in src and "return;" in src

    def test_with_style_blocks(self):
        def k(a):
            i = Int()
            with for_(i, 0, 4):
                with if_(idx > 0):
                    a[idx] += i

        src = capture(k, Array(int_, 4)).source
        assert "for (" in src and "if (" in src

    def test_unbalanced_construct_detected(self):
        def k(a):
            if_(idx > 0)
            a[idx] = 1
            # endif_() forgotten

        with pytest.raises(KernelCaptureError, match="open"):
            capture(k, Array(int_, 4))

    def test_mismatched_end_detected(self):
        def k(a):
            if_(idx > 0)
            a[idx] = 1
            endfor_()

        with pytest.raises(KernelCaptureError, match="mismatch"):
            capture(k, Array(int_, 4))

    def test_python_if_on_kernel_data_raises(self):
        def k(a):
            if idx > 0:        # Python `if`, not if_
                a[idx] = 1

        with pytest.raises(KernelCaptureError, match="truth value"):
            capture(k, Array(int_, 4))

    def test_constructs_outside_kernel_raise(self):
        with pytest.raises(KernelCaptureError, match="inside"):
            if_(True)
        with pytest.raises(KernelCaptureError, match="inside"):
            barrier(LOCAL)

    def test_for_needs_kernel_variable(self):
        def k(a):
            for_(3, 0, 10)
            endfor_()

        with pytest.raises(KernelCaptureError, match="induction"):
            capture(k, Array(int_, 4))


class TestDeclarationsAndFunctions:
    def test_local_array_declaration(self):
        def k(a):
            s = Array(float_, 32, mem=Local)
            s[lidx] = a[idx]
            barrier(LOCAL)
            a[idx] = s[lidx]

        cap = capture(k, Array(float_, 32))
        assert "__local float" in cap.source
        assert cap.info.uses_barrier and cap.info.uses_local_memory

    def test_private_array_declaration(self):
        def k(a):
            q = Array(int_, 10)
            q[0] = idx
            a[idx] = q[0]

        src = capture(k, Array(int_, 4)).source
        assert "int arr" in src and "[10];" in src

    def test_scalar_var_named(self):
        def k(a):
            mySum = Float(0, name="mySum")
            mySum += a[idx]
            a[idx] = mySum

        src = capture(k, Array(float_, 4)).source
        assert "float mySum = 0" in src

    def test_math_functions_emit_builtins(self):
        def k(a):
            a[idx] = sqrt(a[idx]) + hpl.fmin(a[idx], 1.0)

        src = capture(k, Array(float_, 4)).source
        assert "sqrt(" in src and "fmin(" in src

    def test_cast_emitted(self):
        def k(dst, src_):
            dst[idx] = cast(src_[idx], int_)

        src = capture(k, Array(int_, 4), Array(float_, 4)).source
        assert "(int)" in src

    def test_where_ternary(self):
        def k(a):
            a[idx] = where(idx > 2, a[idx], -a[idx])

        src = capture(k, Array(int_, 8)).source
        assert "?" in src and ":" in src

    def test_barrier_flags(self):
        def k(a):
            a[idx] = 0
            barrier(hpl.LOCAL | hpl.GLOBAL)

        src = capture(k, Array(int_, 4)).source
        assert "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE" in src

    def test_scalar_param_assignment_rejected(self):
        def k(a, n):
            n.assign(3)

        with pytest.raises(KernelCaptureError, match="by value"):
            capture(k, Array(int_, 4), Int(5))

    def test_generated_source_compiles(self):
        """Every generated kernel must be valid input for repro.clc."""
        from repro.clc import compile_source

        def k(out, v1, v2):
            i = Int()
            s = Array(float_, 16, mem=Local)
            s[lidx] = v1[idx] * v2[idx]
            barrier(LOCAL)
            if_(lidx == 0)
            acc = Float(0)
            for_(i, 0, 16)
            acc += s[i]
            endfor_()
            out[gidx] = acc
            endif_()

        cap = capture(k, Array(float_, 64), Array(float_, 64),
                      Array(float_, 64))
        prog = compile_source(cap.source)
        assert "k" in prog.kernels
