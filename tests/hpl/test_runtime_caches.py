"""Capture/compile cache growth: per-call lambdas must not leak."""

import gc

import numpy as np
import pytest

import repro.hpl as hpl
from repro.hpl import Array, Float, float_, get_runtime, idx


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def _farray(n=16, value=1.0):
    a = Array(float_, n)
    a.data[:] = np.float32(value)
    return a


class TestPerCallLambdas:
    def test_loop_of_fresh_lambdas_shares_one_entry(self):
        # each iteration builds a NEW closure object over the same code
        # with the same captured value — the old id()-less keying grew
        # the caches by one entry per call
        rt = get_runtime()
        for _ in range(8):
            factor = 2.0

            def scale(y, s):
                y[idx] = y[idx] * factor

            a = _farray()
            hpl.eval(scale)(a, Float(1.0))
        assert rt.stats.kernels_captured == 1
        assert rt.stats.kernels_built == 1
        assert rt.cache_entries == 2          # one captured + one binary

    def test_different_closure_values_get_distinct_entries(self):
        rt = get_runtime()
        for factor in (2.0, 3.0):
            def scale(y):
                y[idx] = y[idx] * factor

            hpl.eval(scale)(_farray())
        assert rt.stats.kernels_captured == 2

    def test_gauge_tracks_cache_size(self):
        rt = get_runtime()

        def k(y):
            y[idx] = y[idx] + 1.0

        hpl.eval(k)(_farray())
        gauge = rt.stats.registry.gauge("hpl.cache_entries")
        assert gauge.value == rt.cache_entries
        assert rt.cache_entries == 2


class TestWeakrefPurge:
    def test_dead_nonprimitive_closure_is_evicted(self):
        # closing over an ndarray forces the weakref fallback; once the
        # function dies, its cache entries must go with it
        rt = get_runtime()

        def make(values):
            def k(y):
                y[idx] = y[idx] + float(values[0])

            return k

        kern = make(np.ones(3))
        hpl.eval(kern)(_farray())
        assert rt.cache_entries == 2
        del kern
        gc.collect()
        assert rt.cache_entries == 0
        assert rt.stats.registry.gauge("hpl.cache_entries").value == 0

    def test_live_nonprimitive_closure_stays_cached(self):
        rt = get_runtime()
        values = np.ones(3)

        def k(y):
            y[idx] = y[idx] + float(values[0])

        hpl.eval(k)(_farray())
        hit = hpl.eval(k)(_farray())
        assert hit.from_cache
        assert rt.stats.kernels_built == 1
        assert rt.cache_entries == 2
