"""Capture/compile cache growth: per-call lambdas must not leak."""

import gc

import numpy as np
import pytest

import repro.hpl as hpl
from repro.hpl import Array, Float, float_, get_runtime, idx


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def _farray(n=16, value=1.0):
    a = Array(float_, n)
    a.data[:] = np.float32(value)
    return a


class TestPerCallLambdas:
    def test_loop_of_fresh_lambdas_shares_one_entry(self):
        # each iteration builds a NEW closure object over the same code
        # with the same captured value — the old id()-less keying grew
        # the caches by one entry per call
        rt = get_runtime()
        for _ in range(8):
            factor = 2.0

            def scale(y, s):
                y[idx] = y[idx] * factor

            a = _farray()
            hpl.eval(scale)(a, Float(1.0))
        assert rt.stats.kernels_captured == 1
        assert rt.stats.kernels_built == 1
        assert rt.cache_entries == 2          # one captured + one binary

    def test_different_closure_values_get_distinct_entries(self):
        rt = get_runtime()
        for factor in (2.0, 3.0):
            def scale(y):
                y[idx] = y[idx] * factor

            hpl.eval(scale)(_farray())
        assert rt.stats.kernels_captured == 2

    def test_gauge_tracks_cache_size(self):
        rt = get_runtime()

        def k(y):
            y[idx] = y[idx] + 1.0

        hpl.eval(k)(_farray())
        gauge = rt.stats.registry.gauge("hpl.cache_entries")
        assert gauge.value == rt.cache_entries
        assert rt.cache_entries == 2


class TestEngineSwitchRecompiles:
    def test_switching_engine_mid_session_recompiles(self):
        """The compiled-kernel cache key carries the resolved engine
        name: ``hpl.configure(engine=)`` mid-session must build a new
        executable, never reuse the other backend's cached code — and
        switching back hits the original entry again."""
        rt = get_runtime()

        def k(y):
            y[idx] = y[idx] * 3.0

        a_vector, a_jit = _farray(), _farray()
        hpl.eval(k)(a_vector)
        assert rt.stats.kernels_built == 1
        hpl.configure(engine="jit")
        try:
            switched = hpl.eval(k)(a_jit)
            assert not switched.from_cache
            assert rt.stats.kernels_built == 2
            again = hpl.eval(k)(_farray())
            assert again.from_cache         # same backend: cached now
        finally:
            hpl.configure(engine=None)
        back = hpl.eval(k)(_farray())
        assert back.from_cache              # original entry still valid
        assert rt.stats.kernels_built == 2
        np.testing.assert_array_equal(a_vector.data, a_jit.data)

    def test_reset_runtime_drops_jit_codegen(self):
        from repro.hpl import reset_runtime
        from repro.ocl.engines import jit as jit_mod

        hpl.configure(engine="jit")
        try:
            hpl.eval(lambda y: y.__setitem__(idx, y[idx] + 1.0))(_farray())
        finally:
            hpl.configure(engine=None)
        assert jit_mod._source_memo
        reset_runtime()
        assert not jit_mod._source_memo


class TestWeakrefPurge:
    def test_dead_nonprimitive_closure_is_evicted(self):
        # closing over an ndarray forces the weakref fallback; once the
        # function dies, its cache entries must go with it
        rt = get_runtime()

        def make(values):
            def k(y):
                y[idx] = y[idx] + float(values[0])

            return k

        kern = make(np.ones(3))
        hpl.eval(kern)(_farray())
        assert rt.cache_entries == 2
        del kern
        gc.collect()
        assert rt.cache_entries == 0
        assert rt.stats.registry.gauge("hpl.cache_entries").value == 0

    def test_live_nonprimitive_closure_stays_cached(self):
        rt = get_runtime()
        values = np.ones(3)

        def k(y):
            y[idx] = y[idx] + float(values[0])

        hpl.eval(k)(_farray())
        hit = hpl.eval(k)(_farray())
        assert hit.from_cache
        assert rt.stats.kernels_built == 1
        assert rt.cache_entries == 2
