"""Direct unit tests of the kernel access-analysis pass (§VI)."""

import pytest

import repro.hpl as hpl
from repro.errors import CoherenceError
from repro.hpl import (Array, Double, Float, Int, barrier, double_,
                       endfor_, endif_, float_, for_, idx, if_, int_,
                       lidx, LOCAL, Local)
from repro.hpl.runtime import get_runtime


def info_of(func, *args):
    return get_runtime().get_captured(func, args).info


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestAccessClassification:
    def test_pure_reader(self):
        def k(dst, src):
            dst[idx] = src[idx]

        info = info_of(k, Array(int_, 4), Array(int_, 4))
        assert info.access == {"dst": "w", "src": "r"}

    def test_read_write(self):
        def k(a):
            a[idx] = a[idx] + 1

        info = info_of(k, Array(int_, 4))
        assert info.access["a"] == "rw"

    def test_augmented_assign_is_rw(self):
        def k(a):
            a[idx] += 1

        assert info_of(k, Array(int_, 4)).access["a"] == "rw"

    def test_index_expression_reads(self):
        def k(dst, lut, src):
            dst[idx] = src[lut[idx]]

        info = info_of(k, Array(float_, 4), Array(int_, 4),
                       Array(float_, 4))
        assert info.access["lut"] == "r"

    def test_untouched_param_defaults_to_read(self):
        def k(a, unused):
            a[idx] = 1

        info = info_of(k, Array(int_, 4), Array(int_, 4))
        assert info.access["unused"] == "r"

    def test_reads_inside_control_flow_found(self):
        def k(a, b):
            i = Int()
            if_(idx > 0)
            for_(i, 0, 4)
            a[idx] += b[i]
            endfor_()
            endif_()

        info = info_of(k, Array(float_, 8), Array(float_, 8))
        assert info.access == {"a": "rw", "b": "r"}

    def test_write_to_constant_memory_rejected(self):
        def k(lut):
            lut[idx] = 1.0

        with pytest.raises(CoherenceError, match="read-only"):
            info_of(k, Array(float_, 4, mem=hpl.Constant))


class TestDerivedFacts:
    def test_double_detection_via_param(self):
        def k(a):
            a[idx] = a[idx] * 2

        assert info_of(k, Array(double_, 4)).uses_double
        assert not info_of(k, Array(float_, 4)).uses_double

    def test_double_detection_via_scalar(self):
        def k(a, s):
            a[idx] = a[idx] + s

        assert info_of(k, Array(float_, 4), Double(1.0)).uses_double

    def test_barrier_and_local_flags(self):
        def k(a):
            s = Array(float_, 8, mem=Local)
            s[lidx] = a[idx]
            barrier(LOCAL)
            a[idx] = s[lidx]

        info = info_of(k, Array(float_, 8))
        assert info.uses_barrier and info.uses_local_memory

    def test_predefined_variable_tracking(self):
        def k(a):
            a[idx] = hpl.gidx + hpl.szx

        used = info_of(k, Array(int_, 4)).predefined_used
        assert {"idx", "gidx", "szx"} <= used

    def test_hpl_and_clc_classifications_agree(self):
        """The HPL-level analysis and the OpenCL compiler's analysis of
        the generated source must reach identical conclusions."""
        from repro.clc import compile_source

        def k(out, inp, both):
            out[idx] = inp[idx]
            both[idx] = both[idx] + inp[idx]

        cap = get_runtime().get_captured(
            k, (Array(float_, 8), Array(float_, 8), Array(float_, 8)))
        clc_params = {p.name: p for p in
                      compile_source(cap.source).kernels["k"].params}
        for name, mode in cap.info.access.items():
            assert clc_params[name].is_read == ("r" in mode)
            assert clc_params[name].is_written == ("w" in mode)
