"""Array coherence across reset_runtime(): dead buffers must not be
silently read as fresh data."""

import numpy as np
import pytest

import repro.hpl as hpl
from repro.errors import CoherenceError
from repro.hpl import Array, Double, double_, idx, reset_runtime


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def scale(y, a):
    y[idx] = a * y[idx]


class TestHostValidSurvivesReset:
    def test_synced_array_recomputes_on_new_runtime(self):
        y = Array(double_, 32)
        y.data[:] = 1.0
        hpl.eval(scale)(y, Double(2.0))
        assert np.all(y.read() == 2.0)        # d2h: host copy now valid

        reset_runtime()
        hpl.eval(scale)(y, Double(3.0))       # re-uploads from host
        assert np.all(y.read() == 6.0)

    def test_untouched_host_array_unaffected_by_reset(self):
        y = Array(double_, 8)
        y.data[:] = 5.0
        reset_runtime()
        assert np.all(y.read() == 5.0)


class TestDeviceOnlyCopyDiesWithRuntime:
    def test_read_after_reset_raises_clear_error(self):
        y = Array(double_, 32)
        y.data[:] = 1.0
        hpl.eval(scale)(y, Double(2.0))
        # device copy is the only valid one: no read() before reset
        reset_runtime()
        with pytest.raises(CoherenceError, match="reset"):
            y.read()

    def test_eval_after_reset_raises_clear_error(self):
        y = Array(double_, 32)
        y.data[:] = 1.0
        hpl.eval(scale)(y, Double(2.0))
        reset_runtime()
        with pytest.raises(CoherenceError, match="reset"):
            hpl.eval(scale)(y, Double(2.0))   # needs host copy to upload

    def test_error_names_the_stranded_device(self):
        y = Array(double_, 32)
        y.data[:] = 1.0
        result = hpl.eval(scale)(y, Double(2.0))
        stranded = result.device.name
        reset_runtime()
        with pytest.raises(CoherenceError, match=stranded.split()[0]):
            y.read()
