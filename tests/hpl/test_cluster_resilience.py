"""Deadline watchdog, speculation, checkpoint/resume, probation.

The resilience invariant mirrors the fault-tolerance one: whatever the
watchdog speculates, the deadline aborts, or a resume skips, the final
gathered results are bit-identical to the fault-free run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap

import numpy as np
import pytest

import repro.hpl as hpl
from repro import trace
from repro.errors import (CheckpointError, ClusterExecutionError,
                          CLError, DeadlineExceeded)
from repro.hpl import CheckpointStore, Float, calibration, cluster_eval, float_
from repro.hpl.cluster import Cluster, DistributedArray, _backoff_delay
from repro.ocl import faults
from repro.ocl.platform import reset_platform_devices

N = 20000
STRAGGLER = "device=Quadro kind=slow factor=1024"


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    calibration().reset()
    faults.configure(None)
    yield
    faults.configure(None)
    calibration().reset()
    reset_platform_devices()
    hpl.reset_runtime()


def saxpy_part(y, x, a, offset, count):
    y[hpl.idx] = a * x[hpl.idx] + y[hpl.idx]


def _problem(cluster, n=N, seed=11):
    rng = np.random.default_rng(seed)
    xd = rng.random(n).astype(np.float32)
    yd = rng.random(n).astype(np.float32)
    x = DistributedArray(float_, n, cluster, data=xd)
    y = DistributedArray(float_, n, cluster, data=yd)
    return (y, x, Float(2.0)), yd


def _expected(n=N, seed=11):
    faults.configure(None)
    hpl.reset_runtime()
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c, n, seed)
    cluster_eval(saxpy_part, c, *args)
    out = args[0].gather()
    hpl.reset_runtime()
    return out


def _run(plan, schedule, n=N, **kwargs):
    hpl.reset_runtime()
    faults.configure(plan)
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c, n)
    result = cluster_eval(saxpy_part, c, *args, schedule=schedule,
                          **kwargs)
    out = args[0].gather()
    faults.configure(None)
    return out, result, c


class TestSeededJitter:
    """Satellite: deterministic full jitter on the retry backoff."""

    def test_keyless_delays_are_the_legacy_exact_values(self):
        assert _backoff_delay(1e-4, 0) == pytest.approx(1e-4)
        assert _backoff_delay(1e-4, 1) == pytest.approx(2e-4)

    def test_keyed_delay_is_jittered_but_positive(self):
        plain = _backoff_delay(1e-4, 1)
        jittered = _backoff_delay(1e-4, 1, key=("dev", 0, 100, 1))
        assert 0 < jittered <= plain
        assert jittered != plain

    def test_jitter_is_reproducible_per_plan_seed(self):
        key = ("SimCL Tesla#0", 0, 500, 2)
        faults.configure("device=Nothing kind=slow factor=1; seed=7")
        first = _backoff_delay(1e-4, 2, key=key)
        assert _backoff_delay(1e-4, 2, key=key) == first
        faults.configure("device=Nothing kind=slow factor=1; seed=8")
        other = _backoff_delay(1e-4, 2, key=key)
        assert other != first
        faults.configure("device=Nothing kind=slow factor=1; seed=7")
        assert _backoff_delay(1e-4, 2, key=key) == first

    def test_different_keys_decorrelate(self):
        a = _backoff_delay(1e-4, 1, key=("dev", 0, 100, 1))
        b = _backoff_delay(1e-4, 1, key=("dev", 100, 200, 1))
        assert a != b


def _warm_then_run(schedule="dynamic", plan=STRAGGLER, **kwargs):
    """One calibration warm-up run under ``plan``, then a measured one.

    The watchdog is predictive: it needs the calibration history the
    warm-up records before it can flag the straggler.
    """
    faults.configure(plan)
    hpl.reset_runtime()
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c)
    cluster_eval(saxpy_part, c, *args, schedule=schedule)
    hpl.reset_runtime()
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c)
    result = cluster_eval(saxpy_part, c, *args, schedule=schedule,
                          **kwargs)
    out = args[0].gather()
    faults.configure(None)
    return out, result


class TestWatchdogSpeculation:
    def test_straggler_chunks_are_speculated_and_results_exact(self):
        registry = trace.get_registry()
        launches0 = registry.counter(
            "cluster.speculative_launches").value
        wins0 = registry.counter("cluster.speculation_wins").value
        cancelled0 = registry.counter("cluster.cancelled_events").value
        out, result = _warm_then_run(watchdog=True)
        f = result.failures
        assert f.speculative_wins > 0
        assert not f.clean
        assert registry.counter(
            "cluster.speculative_launches").value > launches0
        assert registry.counter(
            "cluster.speculation_wins").value > wins0
        # the losers' event graphs really were torn down
        assert registry.counter(
            "cluster.cancelled_events").value > cancelled0
        assert np.array_equal(out, _expected())

    def test_without_watchdog_no_speculation_happens(self):
        registry = trace.get_registry()
        before = registry.counter("cluster.speculative_launches").value
        out, result = _warm_then_run(watchdog=None)
        assert result.failures.speculative_wins == 0
        assert registry.counter(
            "cluster.speculative_launches").value == before
        assert np.array_equal(out, _expected())

    def test_watchdog_on_a_healthy_cluster_never_fires(self):
        out, result = _warm_then_run(plan=None, watchdog=True)
        assert result.failures.speculative_wins == 0
        assert result.failures.clean
        assert np.array_equal(out, _expected())

    @pytest.mark.parametrize("engine", ["serial", "vector", "jit"])
    def test_cancelled_losers_never_mutate_buffers(self, engine):
        # differential: with speculation firing, every engine must
        # produce bits identical to its own fault-free run — if a
        # cancelled loser's payload ever ran, the double-execute would
        # corrupt the accumulating y
        hpl.configure(engine=engine)
        try:
            expected = _expected()
            calibration().reset()
            out, result = _warm_then_run(watchdog=True)
            assert result.failures.speculative_wins > 0
            assert np.array_equal(out, expected)
        finally:
            hpl.configure(engine=None)


class TestDeadline:
    def test_tight_deadline_raises_with_partial_result(self):
        with pytest.raises(DeadlineExceeded) as info:
            _run(None, "dynamic", deadline=1e-6)
        exc = info.value
        assert exc.failures.deadline_missed
        assert not exc.failures.clean
        assert exc.result is not None
        _out, full, _c = _run(None, "dynamic")
        assert len(exc.result) < len(full)          # partial, not full

    @pytest.mark.parametrize("schedule", ["uniform", "dynamic"])
    def test_generous_deadline_never_fires(self, schedule):
        out, result, _c = _run(None, schedule, deadline=1e3)
        assert not result.failures.deadline_missed
        assert result.failures.clean
        assert np.array_equal(out, _expected())


class TestCheckpointResume:
    @pytest.mark.parametrize("schedule", ["dynamic", "weighted"])
    def test_deadline_abort_then_resume_is_bit_identical(
            self, schedule, tmp_path):
        with pytest.raises(DeadlineExceeded):
            _run(None, schedule, checkpoint=tmp_path,
                 checkpoint_every=1, deadline=1e-6)
        out, result, _c = _run(None, schedule, checkpoint=tmp_path,
                               resume=True)
        assert result.failures.resumed_blocks > 0
        assert not result.failures.clean
        assert np.array_equal(out, _expected())

    def test_resume_of_a_complete_run_computes_nothing(self, tmp_path):
        _run(None, "dynamic", checkpoint=tmp_path)
        out, result, _c = _run(None, "dynamic", checkpoint=tmp_path,
                               resume=True)
        assert len(result) == 0             # every block was restored
        assert result.failures.resumed_blocks > 0
        assert np.array_equal(out, _expected())

    def test_checkpoint_bytes_metric_and_clean_flag(self, tmp_path):
        registry = trace.get_registry()
        before = registry.counter("cluster.checkpoint_bytes").value
        _out, result, _c = _run(None, "dynamic", checkpoint=tmp_path)
        assert registry.counter(
            "cluster.checkpoint_bytes").value > before
        assert result.failures.clean        # checkpointing is not a fault

    def test_foreign_snapshot_is_ignored_not_resumed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"kernel": "someone_else", "n": 3,
                    "arrays": ["float32"]},
                   [np.zeros(3, np.float32)], [(0, 3)])
        out, result, _c = _run(None, "dynamic", checkpoint=tmp_path,
                               resume=True)
        assert result.failures.resumed_blocks == 0
        assert np.array_equal(out, _expected())

    def test_corrupt_blob_raises_checkpoint_error(self, tmp_path):
        _run(None, "dynamic", checkpoint=tmp_path)
        # corrupt a blob the final manifest references (the objects/
        # dir also holds stale content-addressed snapshots from the
        # intermediate saves, which load never reads)
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        sha = manifest["blobs"][0]["sha256"]
        (tmp_path / "objects" / f"{sha}.bin").write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            _run(None, "dynamic", checkpoint=tmp_path, resume=True)

    def test_incompatible_version_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"k": 1}, [np.zeros(2, np.float32)], [(0, 2)])
        manifest = tmp_path / "MANIFEST.json"
        data = json.loads(manifest.read_text())
        data["version"] = 999
        manifest.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            store.load({"k": 1})


_KILL_CHILD = textwrap.dedent("""
    import os, signal, sys
    import numpy as np
    import repro.hpl as hpl
    from repro.hpl import Float, cluster_eval, float_
    from repro.hpl.cluster import Cluster, DistributedArray
    from repro.hpl import checkpoint as ckpt

    mode, ckpt_dir, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

    if mode == "kill":
        # SIGKILL the process at the third snapshot: no cleanup, no
        # atexit — exactly a crashed run
        original = ckpt.CheckpointStore.save
        calls = {"n": 0}
        def killing_save(self, run_id, arrays, completed):
            calls["n"] += 1
            if calls["n"] == 3:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, run_id, arrays, completed)
        ckpt.CheckpointStore.save = killing_save

    def saxpy_part(y, x, a, offset, count):
        y[hpl.idx] = a * x[hpl.idx] + y[hpl.idx]

    n = 20000
    rng = np.random.default_rng(11)
    xd = rng.random(n).astype(np.float32)
    yd = rng.random(n).astype(np.float32)
    c = Cluster(hpl.get_devices())
    x = DistributedArray(float_, n, c, data=xd)
    y = DistributedArray(float_, n, c, data=yd)
    cluster_eval(saxpy_part, c, y, x, Float(2.0), schedule="dynamic",
                 checkpoint=ckpt_dir, checkpoint_every=1,
                 resume=(mode == "resume"))
    np.save(out_path, y.gather())
""")


class TestKillAndResume:
    def test_sigkilled_run_resumes_bit_identically(self, tmp_path):
        script = tmp_path / "child.py"
        script.write_text(_KILL_CHILD)
        ckpt_dir = tmp_path / "ckpt"
        out_path = tmp_path / "out.npy"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(hpl.__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src)
        env.pop("HPL_FAULTS", None)

        first = subprocess.run(
            [sys.executable, str(script), "kill", str(ckpt_dir),
             str(out_path)], env=env, capture_output=True, timeout=120)
        assert first.returncode == -signal.SIGKILL, first.stderr.decode()
        assert not out_path.exists()        # it really died mid-run
        assert (ckpt_dir / "MANIFEST.json").exists()

        second = subprocess.run(
            [sys.executable, str(script), "resume", str(ckpt_dir),
             str(out_path)], env=env, capture_output=True, timeout=120)
        assert second.returncode == 0, second.stderr.decode()
        out = np.load(out_path)
        assert np.array_equal(out, _expected())


class TestProbationReadmission:
    def test_transiently_lost_device_is_probed_back(self):
        # the device dies with DeviceLost for its first 3 matching ops
        # (launch + two failed probes), then heals: probation readmits
        # it mid-run with decayed calibration
        registry = trace.get_registry()
        probes0 = registry.counter("cluster.probes").value
        readmit0 = registry.counter("cluster.readmitted").value
        out, result, c = _run(
            "device=Quadro kind=transient code=lost nth=1 count=3",
            "dynamic", probation=True, probe_interval=1)
        f = result.failures
        assert "SimCL Quadro FX 380#1" in f.devices_lost
        assert "SimCL Quadro FX 380#1" in f.readmitted
        assert not f.clean
        assert registry.counter("cluster.probes").value > probes0
        assert registry.counter(
            "cluster.readmitted").value > readmit0
        assert any(d.label == "SimCL Quadro FX 380#1"
                   for d in c.devices)
        assert np.array_equal(out, _expected())

    def test_readmitted_device_calibration_is_decayed(self):
        _run(None, "dynamic")       # record calibration for everyone
        quadro = "SimCL Quadro FX 380#1"
        before = calibration().throughput("saxpy_part", quadro)
        assert before
        _run("device=Quadro kind=transient code=lost nth=1 count=2",
             "dynamic", probation=True, probe_interval=1,
             probation_decay=0.5)
        after = calibration().throughput("saxpy_part", quadro)
        assert after < before

    @pytest.mark.parametrize("schedule", ["uniform", "dynamic"])
    def test_all_devices_lost_is_fatal_after_probes_fail(
            self, schedule):
        # permanent loss: probes can never revive anyone, so the
        # all-lost path must still end in ClusterExecutionError
        registry = trace.get_registry()
        probes0 = registry.counter("cluster.probes").value
        with pytest.raises(ClusterExecutionError):
            _run("device=* kind=lost at=0", schedule, probation=True,
                 probe_interval=1)
        assert registry.counter("cluster.probes").value > probes0

    def test_without_probation_all_lost_fails_without_probing(self):
        registry = trace.get_registry()
        probes0 = registry.counter("cluster.probes").value
        with pytest.raises(ClusterExecutionError):
            _run("device=* kind=lost at=0", "dynamic")
        assert registry.counter("cluster.probes").value == probes0


class TestGatherDeviceLoss:
    def test_device_loss_during_gather_d2h_raises(self):
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        args, _ = _problem(c)
        cluster_eval(saxpy_part, c, *args)
        # results now live on the devices; the Tesla dies before its
        # d2h transfer, so the gather cannot produce complete data
        faults.configure("device=Tesla kind=lost op=read at=0")
        with pytest.raises(CLError):
            args[0].gather()


class TestFailureSummaryDict:
    def test_as_dict_has_all_resilience_fields(self):
        _out, result, _c = _run(None, "dynamic")
        d = result.failures.as_dict()
        for key in ("transient_failures", "retries", "backoff_seconds",
                    "devices_lost", "requeued_items",
                    "speculative_wins", "deadline_missed",
                    "resumed_blocks", "readmitted", "clean"):
            assert key in d
        assert d["clean"] is True
