"""Cluster scheduling: policies, calibration, and the cluster-layer
bugfixes (device-identity timelines, tiny partitions, overlapped
gather, per-capture broadcast-write checks)."""

import numpy as np
import pytest

import repro.hpl as hpl
from repro.errors import HPLError
from repro.hpl import Float, Int, endfor_, float_, for_, idx, int_
from repro.hpl.cluster import (Cluster, DistributedArray, DynamicScheduler,
                               Scheduler, UniformScheduler,
                               WeightedScheduler, calibration, cluster_eval,
                               get_scheduler, timeline_of)
from repro.ocl import (QUADRO_FX380, TESLA_C2050, XEON_HOST, XEON_SERIAL,
                       reset_platform_devices, set_platform_devices)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    # calibration history is process-wide by design; isolate tests
    calibration().reset()
    yield
    calibration().reset()
    reset_platform_devices()
    hpl.reset_runtime()


def ep_part(y, x, a, offset, count):
    y[idx] = a * hpl.sqrt(x[idx] * x[idx] + 1.0) + y[idx]


K = 4   # row width of the ELL-style matrix in spmv_part


def spmv_part(y, vals, cols, xv, offset, count):
    # y is distributed over rows; the matrix and the full x vector are
    # broadcast (read-only) — each device computes its rows only
    row = Int()
    row.assign(offset + idx)
    acc = Float(0.0)
    j = Int()
    for_(j, 0, K)
    acc.assign(acc + vals[row * K + j] * xv[cols[row * K + j]])
    endfor_()
    y[idx] = acc


def _ep_problem(cluster, rng, n):
    xs = rng.random(n).astype(np.float32)
    ys = rng.random(n).astype(np.float32)
    dx = DistributedArray(float_, n, cluster, data=xs)
    dy = DistributedArray(float_, n, cluster, data=ys)
    return (dy, dx, Float(2.0)), dy


def _spmv_problem(cluster, rng, n):
    vals = hpl.Array(float_, n * K)
    cols = hpl.Array(int_, n * K)
    xv = hpl.Array(float_, n)
    vals.data[:] = rng.random(n * K).astype(np.float32)
    cols.data[:] = rng.integers(0, n, n * K)
    xv.data[:] = rng.random(n).astype(np.float32)
    dy = DistributedArray(float_, n, cluster)
    return (dy, vals, cols, xv), dy


PROBLEMS = {"ep": (ep_part, _ep_problem),
            "spmv": (spmv_part, _spmv_problem)}


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("problem", sorted(PROBLEMS))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_policies_bit_identical(self, rng, problem, k):
        kernel, make = PROBLEMS[problem]
        n = 257     # odd on purpose: uneven splits everywhere
        outs = {}
        for schedule in (None, "uniform", "weighted", "dynamic"):
            hpl.reset_runtime()
            c = Cluster(hpl.get_devices()[:k])
            args, out = make(c, np.random.default_rng(7), n)
            results = cluster_eval(kernel, c, *args, schedule=schedule)
            assert all(r.complete for r in results)
            outs[schedule] = out.gather()
        base = outs[None]
        for schedule, got in outs.items():
            assert np.array_equal(got, base), \
                f"{schedule} diverged from default partitioning"

    def test_explicit_weights_respected(self, rng):
        c = Cluster(hpl.get_devices())
        args, out = _ep_problem(c, rng, 300)
        sched = WeightedScheduler(weights=[1.0, 0.0, 0.0])
        results = cluster_eval(ep_part, c, *args, schedule=sched)
        # zero-weight devices get empty partitions, skipped at launch
        assert len(results) == 1
        dy = args[0]
        assert [hi - lo for lo, hi in dy.bounds] == [300, 0, 0]

    def test_unknown_schedule_rejected(self):
        with pytest.raises(HPLError, match="unknown schedule"):
            get_scheduler("fastest")

    def test_dynamic_has_no_static_plan(self):
        with pytest.raises(HPLError, match="on demand"):
            DynamicScheduler().plan(100, Cluster(hpl.get_devices()))

    def test_base_scheduler_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Scheduler().plan(10, Cluster(hpl.get_devices()))


class TestDeviceIdentityTimelines:
    def test_same_model_devices_get_separate_buckets(self, rng):
        # regression: busy time used to be keyed by device *name*, so
        # two devices of the same model merged into one bucket and the
        # serialized/overlap numbers were wrong
        set_platform_devices([TESLA_C2050, TESLA_C2050])
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        assert len(c) == 2
        args, _out = _ep_problem(c, rng, 1 << 12)
        results = cluster_eval(ep_part, c, *args)
        tl = timeline_of(results)
        assert set(tl.busy_seconds) == {
            "SimCL Tesla C2050/C2070#0", "SimCL Tesla C2050/C2070#1"}
        assert tl.serialized_seconds == pytest.approx(
            sum(tl.busy_seconds.values()))
        # identical devices with near-even blocks must overlap
        assert tl.overlap_factor > 1.5

    def test_labels_unique_across_roster(self):
        set_platform_devices([TESLA_C2050, TESLA_C2050, TESLA_C2050])
        hpl.reset_runtime()
        labels = [d.label for d in hpl.get_devices()]
        assert len(set(labels)) == 3


class TestTinyPartitions:
    def test_one_element_on_four_devices(self, rng):
        set_platform_devices(
            [TESLA_C2050, QUADRO_FX380, XEON_HOST, XEON_SERIAL])
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        assert len(c) == 4
        d = DistributedArray(float_, 1, c, data=np.array([3.0], np.float32))
        y = DistributedArray(float_, 1, c)
        results = cluster_eval(ep_part, c, y, d, Float(2.0))
        # only the single non-empty partition launched
        assert len(results) == 1
        assert y.parts.count(None) == 3
        expected = np.float32(2.0) * np.sqrt(np.float32(3.0) ** 2
                                             + np.float32(1.0))
        assert y.gather()[0] == pytest.approx(expected, rel=1e-6)

    def test_fewer_elements_than_devices(self, rng):
        c = Cluster(hpl.get_devices())
        data = np.arange(2, dtype=np.float32)
        d = DistributedArray(float_, 2, c, data=data)
        results = cluster_eval(ep_part, c, d, d, Float(2.0))
        assert len(results) == 2
        expected = np.float32(2.0) * np.sqrt(data * data
                                             + np.float32(1.0)) + data
        assert np.allclose(d.gather(), expected, rtol=1e-6)


class TestOverlappedGather:
    def test_gather_transfers_overlap(self, rng):
        # regression: gather used to block on each partition's d2h in
        # the host loop; now all copies are enqueued before any wait,
        # so transfers from different devices share the timeline
        set_platform_devices([TESLA_C2050, TESLA_C2050])
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        args, out = _ep_problem(c, rng, 1 << 14)
        cluster_eval(ep_part, c, *args)
        out.gather()
        events = out.last_gather_events
        assert len(events) == 2
        tl = timeline_of(events)
        assert set(tl.busy_seconds) == {d.label for d in c.devices}
        assert tl.makespan_seconds < tl.serialized_seconds
        assert tl.overlap_factor > 1.0

    def test_gather_without_device_writes_needs_no_events(self, rng):
        c = Cluster(hpl.get_devices())
        data = rng.random(64).astype(np.float32)
        d = DistributedArray(float_, 64, c, data=data)
        assert np.array_equal(d.gather(), data)
        assert d.last_gather_events == []


class TestCalibrationFeedback:
    def test_eval_records_throughput_for_all_devices(self, rng):
        c = Cluster(hpl.get_devices())
        args, _out = _ep_problem(c, rng, 3000)
        cluster_eval(ep_part, c, *args)
        for d in c.devices:
            tput = calibration().throughput("ep_part", d.label)
            assert tput is not None and tput > 0
            assert calibration().samples("ep_part", d.label) == 1

    def test_weighted_uses_history_once_complete(self, rng):
        c = Cluster(hpl.get_devices())
        sched = WeightedScheduler()
        _w, source = sched.weights_for(c, "ep_part")
        assert source == "spec"
        args, _out = _ep_problem(c, rng, 3000)
        cluster_eval(ep_part, c, *args)
        weights, source = sched.weights_for(c, "ep_part")
        assert source == "calibrated"
        assert weights == [calibration().throughput("ep_part", d.label)
                           for d in c.devices]
        # opting out of calibration returns to spec estimates
        _w, source = WeightedScheduler(calibrate=False).weights_for(
            c, "ep_part")
        assert source == "spec"

    def test_weighted_favours_faster_device(self, rng):
        # Tesla's spec throughput dwarfs the Quadro's; its block must
        # be the largest under either weight source
        c = Cluster(hpl.get_devices())
        plan = UniformScheduler().plan(3000, c)
        wplan = WeightedScheduler().plan(3000, c)
        assert sum(p.size for p in wplan) == 3000
        assert wplan[0].size > max(p.size for p in plan)


class TestBroadcastWriteCheckPerCapture:
    def test_closure_change_recaptures_and_rejects(self, rng):
        # the write-set of `flex` depends on a closure value, so the
        # capture consulted by the broadcast-write check must be the
        # capture for the *current* closure, not a cached earlier one
        write_broadcast = False

        def flex(y, acc, offset, count):
            if write_broadcast:
                acc[idx] = y[idx]
            else:
                y[idx] = y[idx] + acc[idx]

        c = Cluster(hpl.get_devices())
        dy = DistributedArray(float_, 60, c,
                              data=rng.random(60).astype(np.float32))
        acc = hpl.Array(float_, 60 // len(c))
        acc.data[:] = rng.random(60 // len(c)).astype(np.float32)
        cluster_eval(flex, c, dy, acc)      # read-only: fine

        write_broadcast = True
        with pytest.raises(HPLError, match="broadcast"):
            cluster_eval(flex, c, dy, acc)

    @pytest.mark.parametrize("schedule", ["uniform", "weighted", "dynamic"])
    def test_checked_under_every_policy(self, rng, schedule):
        def bad(y, acc, offset, count):
            acc[idx] = y[idx]

        c = Cluster(hpl.get_devices())
        dy = DistributedArray(float_, 60, c,
                              data=rng.random(60).astype(np.float32))
        acc = hpl.Array(float_, 60)
        with pytest.raises(HPLError, match="broadcast"):
            cluster_eval(bad, c, dy, acc, schedule=schedule)


class TestRepartition:
    def test_repartition_preserves_contents(self, rng):
        c = Cluster(hpl.get_devices())
        data = rng.random(100).astype(np.float32)
        d = DistributedArray(float_, 100, c, data=data)
        d.repartition([(0, 90), (90, 95), (95, 100)])
        assert [hi - lo for lo, hi in d.bounds] == [90, 5, 5]
        assert np.array_equal(d.gather(), data)

    def test_repartition_after_device_writes(self, rng):
        c = Cluster(hpl.get_devices())
        args, out = _ep_problem(c, rng, 120)
        cluster_eval(ep_part, c, *args)
        before = out.gather().copy()
        out.repartition([(0, 100), (100, 110), (110, 120)])
        assert np.array_equal(out.gather(), before)

    def test_bad_bounds_rejected(self, rng):
        c = Cluster(hpl.get_devices())
        d = DistributedArray(float_, 10, c)
        with pytest.raises(HPLError):
            d.repartition([(0, 4), (5, 10), (10, 10)])   # gap
        with pytest.raises(HPLError):
            d.repartition([(0, 4), (4, 9)])              # short cover


class TestDynamicDispatch:
    def test_fast_device_pulls_most_chunks(self, rng):
        c = Cluster(hpl.get_devices())
        args, out = _ep_problem(c, rng, 1 << 14)
        results = cluster_eval(ep_part, c, *args, schedule="dynamic")
        assert len(results) > len(c)     # really chunked
        per_device = {}
        for r in results:
            per_device[r.device.label] = \
                per_device.get(r.device.label, 0) + 1
        assert set(per_device) == {d.label for d in c.devices}
        # chunk bounds became the array's partitioning
        assert len(out.bounds) == len(results)

    def test_fixed_chunk_size(self, rng):
        c = Cluster(hpl.get_devices())
        args, out = _ep_problem(c, rng, 100)
        sched = DynamicScheduler(chunk_size=40)
        results = cluster_eval(ep_part, c, *args, schedule=sched)
        assert [hi - lo for lo, hi in args[0].bounds] == [40, 40, 20]
        assert len(results) == 3
