"""Pattern library and multi-device cluster extension tests (§VII)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hpl as hpl
from repro.errors import DomainError, HPLError
from repro.hpl import Array, Float, double_, float_, idx, int_
from repro.hpl.cluster import Cluster, DistributedArray, cluster_eval
from repro.hpl.patterns import (map_arrays, reduce_array, scan_array,
                                stencil_1d)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def farray(values):
    a = Array(float_, len(values))
    a.data[:] = np.asarray(values, dtype=np.float32)
    return a


class TestMap:
    def test_binary_map(self, rng):
        a = farray(rng.random(128))
        b = farray(rng.random(128))
        out = Array(float_, 128)
        map_arrays(lambda x, y: x * y, out, a, b)
        assert np.allclose(out.read(), a.read() * b.read(), rtol=1e-6)

    def test_unary_map_with_math(self, rng):
        a = farray(rng.random(64) + 0.5)
        out = Array(float_, 64)
        map_arrays(lambda x: hpl.sqrt(x), out, a)
        assert np.allclose(out.read(), np.sqrt(a.read()), rtol=1e-5)

    def test_map_with_extra_scalar(self, rng):
        a = farray(rng.random(32))
        out = Array(float_, 32)
        map_arrays(lambda x, s: x * s, out, a, extra_args=(Float(3.0),))
        assert np.allclose(out.read(), a.read() * 3.0, rtol=1e-6)

    def test_size_mismatch_rejected(self):
        with pytest.raises(HPLError):
            map_arrays(lambda x: x, Array(float_, 4), Array(float_, 5))

    def test_map_kernel_is_cached(self, rng):
        fn = lambda x: x + 1.0  # noqa: E731
        a = farray(rng.random(16))
        out = Array(float_, 16)
        map_arrays(fn, out, a)
        rt = hpl.get_runtime()
        built = rt.stats.kernels_built
        map_arrays(fn, out, a)
        assert rt.stats.kernels_built == built

    def test_int_map(self):
        a = Array(int_, 16)
        a.data[:] = np.arange(16)
        out = Array(int_, 16)
        map_arrays(lambda x: x * 2 + 1, out, a)
        assert np.array_equal(out.read(), np.arange(16) * 2 + 1)


class TestReduce:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=500))
    def test_sum_matches_numpy(self, values):
        a = farray(values)
        got = reduce_array(a, "+")
        assert np.isclose(got, a.read().astype(np.float64).sum(),
                          rtol=1e-3, atol=1e-3)

    def test_min_max(self, rng):
        a = farray(rng.random(300) * 100)
        assert np.isclose(reduce_array(a, "min"), a.read().min())
        assert np.isclose(reduce_array(a, "max"), a.read().max())

    def test_single_element(self):
        a = farray([42.0])
        assert reduce_array(a, "+") == pytest.approx(42.0)

    def test_int_sum(self):
        a = Array(int_, 1000)
        a.data[:] = np.arange(1000)
        assert reduce_array(a, "+") == 499500

    def test_unknown_op_rejected(self):
        with pytest.raises(HPLError):
            reduce_array(farray([1.0]), "*")


class TestScanAndStencil:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 300))
    def test_scan_matches_cumsum(self, n):
        a = farray(np.ones(n))
        s = scan_array(a)
        assert np.allclose(s.read(), np.arange(1, n + 1), rtol=1e-4)

    def test_scan_random_values(self, rng):
        vals = rng.random(257).astype(np.float32)
        s = scan_array(farray(vals))
        assert np.allclose(s.read(), np.cumsum(vals, dtype=np.float64),
                           rtol=1e-3)

    def test_scan_rejects_2d(self):
        with pytest.raises(HPLError):
            scan_array(Array(float_, 4, 4))

    def test_stencil_blur(self, rng):
        vals = rng.random(100).astype(np.float32)
        src = farray(vals)
        out = Array(float_, 100)
        stencil_1d(out, src, [0.25, 0.5, 0.25])
        ref = np.array([0.25 * vals[max(i - 1, 0)] + 0.5 * vals[i]
                        + 0.25 * vals[min(i + 1, 99)]
                        for i in range(100)])
        assert np.allclose(out.read(), ref, rtol=1e-4)

    def test_stencil_identity(self, rng):
        vals = rng.random(32).astype(np.float32)
        src = farray(vals)
        out = Array(float_, 32)
        stencil_1d(out, src, [0.0, 1.0, 0.0])
        assert np.allclose(out.read(), vals, rtol=1e-6)

    def test_stencil_needs_odd_weights(self):
        with pytest.raises(HPLError):
            stencil_1d(Array(float_, 4), Array(float_, 4), [1.0, 1.0])


class TestCluster:
    def test_default_cluster_uses_non_cpu_devices(self):
        c = Cluster()
        assert len(c) == 2
        assert all(not d.is_cpu for d in c.devices)

    def test_partition_bounds_cover_everything(self):
        c = Cluster()
        bounds = c.partition_bounds(101)
        assert bounds[0][0] == 0 and bounds[-1][1] == 101
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0

    def test_partition_smaller_than_cluster_degrades(self):
        # n < devices: first n devices get one element each, the rest
        # get empty partitions (skipped at eval time) — not an error
        c = Cluster()
        bounds = c.partition_bounds(1)
        assert bounds[0] == (0, 1)
        assert all(lo == hi for lo, hi in bounds[1:])

    def test_negative_count_rejected(self):
        c = Cluster()
        with pytest.raises(DomainError):
            c.partition_bounds(-1)

    def test_scatter_gather_roundtrip(self, rng):
        c = Cluster()
        data = rng.random(37).astype(np.float32)
        d = DistributedArray(float_, 37, c)
        d.scatter(data)
        assert np.array_equal(d.gather(), data)

    def test_distributed_saxpy(self, rng):
        def saxpy_part(y, x, a, offset, count):
            y[idx] = a * x[idx] + y[idx]

        c = Cluster()
        xs = rng.random(100).astype(np.float32)
        ys = rng.random(100).astype(np.float32)
        dx = DistributedArray(float_, 100, c, data=xs)
        dy = DistributedArray(float_, 100, c, data=ys)
        results = cluster_eval(saxpy_part, c, dy, dx, Float(2.0))
        assert len(results) == len(c)
        assert {r.device.name for r in results} == \
            {d.name for d in c.devices}
        assert np.allclose(dy.gather(), 2.0 * xs + ys, rtol=1e-5)

    def test_offset_parameter_reaches_kernel(self, rng):
        def fill_global_index(out, offset, count):
            out[idx] = offset + idx

        c = Cluster()
        d = DistributedArray(float_, 64, c)
        cluster_eval(fill_global_index, c, d)
        assert np.array_equal(d.gather(), np.arange(64))

    def test_mismatched_sizes_rejected(self):
        c = Cluster()
        a = DistributedArray(float_, 32, c)
        b = DistributedArray(float_, 64, c)

        def k(x, y, offset, count):
            x[idx] = y[idx]

        with pytest.raises(HPLError):
            cluster_eval(k, c, a, b)

    def test_needs_a_distributed_array(self):
        def k(offset, count):
            i = hpl.Int()
            i.assign(offset)

        with pytest.raises(HPLError):
            cluster_eval(k, Cluster())

    def test_scatter_size_mismatch(self):
        d = DistributedArray(float_, 16, Cluster())
        with pytest.raises(HPLError):
            d.scatter(np.zeros(10, np.float32))
