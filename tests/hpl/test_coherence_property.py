"""Property test of the coherence protocol: under any interleaving of
host reads, host writes, and kernel launches on either GPU, the array
value visible anywhere is always the value the operation sequence
implies.  This is the invariant behind HPL's transfer minimisation —
laziness must never be observable."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.hpl as hpl
from repro.hpl import Array, double_, idx

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("host_write"), st.floats(-100, 100)),
        st.tuples(st.just("host_read"), st.none()),
        st.tuples(st.just("kernel_tesla"), st.none()),
        st.tuples(st.just("kernel_xeon"), st.none()),
        st.tuples(st.just("data_alias"), st.floats(-100, 100)),
    ),
    min_size=1, max_size=12)


def _inc(a):
    a[idx] = a[idx] + 1.0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=_OPS)
def test_any_interleaving_stays_coherent(ops):
    hpl.reset_runtime()
    n = 8
    a = Array(double_, n).fill(0.0)
    model = np.zeros(n)

    for op, value in ops:
        if op == "host_write":
            a[3] = value
            model[3] = value
        elif op == "host_read":
            assert np.allclose(a.read(), model)
        elif op == "kernel_tesla":
            hpl.eval(_inc).device("Tesla")(a)
            model += 1.0
        elif op == "kernel_xeon":
            # a second fp64-capable device (the Quadro lacks fp64)
            hpl.eval(_inc).device("Xeon")(a)
            model += 1.0
        elif op == "data_alias":
            a.data[5] = value
            model[5] = value

    assert np.allclose(a.read(), model)
    assert np.allclose(a.read(), model)   # reading twice changes nothing
