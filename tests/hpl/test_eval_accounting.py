"""EvalResult time decomposition — the numbers behind Fig. 8.

``kernel_seconds`` / ``transfer_seconds`` / ``overhead_seconds`` carve
one invocation's cost into simulated kernel execution, simulated PCIe
traffic, and wall-clock HPL overhead (capture + codegen + build).  The
overhead benchmark depends on this decomposition being exact, so it is
pinned here against the underlying events and stats.
"""

from __future__ import annotations

import pytest

import repro.hpl as hpl
from repro.hpl import Array, Double, double_, idx


def scale(y, a):
    y[idx] = a * y[idx]


def axpy(y, x, a):
    y[idx] = a * x[idx] + y[idx]


def _arrays(n=64):
    x = Array(double_, n)
    y = Array(double_, n)
    x.data[:] = 1.5
    y.data[:] = 2.0
    return x, y


class TestKernelSeconds:
    def test_matches_the_kernel_event(self, fresh_runtime):
        _x, y = _arrays()
        result = hpl.eval(scale)(y, Double(2.0))
        assert result.kernel_seconds == pytest.approx(
            result.kernel_event.duration)
        assert result.kernel_seconds > 0

    def test_is_simulated_not_wall_time(self, fresh_runtime):
        # the simulated duration comes from the cost model: identical
        # launches on a fresh device produce identical durations, which
        # would be wildly improbable for wall-clock measurements
        _x, y = _arrays()
        r1 = hpl.eval(scale)(y, Double(2.0))
        r2 = hpl.eval(scale)(y, Double(2.0))
        assert r1.kernel_seconds == pytest.approx(r2.kernel_seconds)


class TestTransferSeconds:
    def test_sums_the_h2d_events_of_this_eval(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        assert len(result.transfer_events) == 2      # x and y uploads
        assert result.transfer_seconds == pytest.approx(
            sum(e.duration for e in result.transfer_events))
        assert result.transfer_seconds > 0

    def test_warm_eval_pays_no_transfers(self, fresh_runtime):
        x, y = _arrays()
        hpl.eval(axpy)(y, x, Double(2.0))
        warm = hpl.eval(axpy)(y, x, Double(2.0))
        assert warm.transfer_events == []
        assert warm.transfer_seconds == 0.0

    def test_agrees_with_runtime_stats(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        stats = hpl.get_runtime().stats
        assert stats.h2d_seconds == pytest.approx(result.transfer_seconds)
        assert stats.transfer_seconds == pytest.approx(
            result.transfer_seconds)     # no d2h yet
        y.read()
        assert stats.d2h_seconds > 0
        assert stats.transfer_seconds == pytest.approx(
            stats.h2d_seconds + stats.d2h_seconds)


class TestTransferAttribution:
    """Regression: a host read between two evals must not leak its d2h
    event into the second eval's ``transfer_events``.

    The old runtime parked every transfer event in a per-device pending
    list that the *next* eval drained, so ``y.read()`` here used to
    credit its d2h time to the second invocation.  Events are now
    threaded explicitly, so misattribution is impossible by
    construction.
    """

    def test_host_read_between_evals_not_misattributed(
            self, fresh_runtime):
        from repro.ocl import command_type

        x, y = _arrays()
        r1 = hpl.eval(axpy)(y, x, Double(2.0))
        assert len(r1.transfer_events) == 2          # x and y uploads

        y.read()                                     # d2h, NOT an eval
        x.data[:] = 3.0                              # host write => h2d

        r2 = hpl.eval(axpy)(y, x, Double(2.0))
        # exactly x's re-upload: no d2h from read(), no stale y upload
        assert len(r2.transfer_events) == 1
        assert all(e.command == command_type.WRITE_BUFFER
                   for e in r2.transfer_events)
        assert [name for name, _e in r2.transfers] == ["x"]

    def test_host_read_event_lands_on_the_array(self, fresh_runtime):
        from repro.ocl import command_type

        x, y = _arrays()
        hpl.eval(axpy)(y, x, Double(2.0))
        assert y.host_event is None
        y.read()
        assert y.host_event is not None
        assert y.host_event.command == command_type.READ_BUFFER
        assert y.host_event.duration > 0

    def test_eval_result_events_and_wait(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        assert result.events == [*result.transfer_events,
                                 result.kernel_event]
        assert result.complete                       # eager mode
        assert result.wait() is result

    def test_kernel_waits_on_its_uploads(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        deps = result.kernel_event.wait_list
        assert all(any(e is d for d in deps)
                   for e in result.transfer_events)
        assert result.kernel_event.profile_start >= max(
            e.profile_end for e in result.transfer_events)


class TestOverheadSeconds:
    def test_cold_eval_pays_codegen_plus_build(self, fresh_runtime):
        _x, y = _arrays()
        cold = hpl.eval(scale)(y, Double(2.0))
        assert not cold.from_cache
        assert cold.codegen_seconds > 0
        assert cold.build_seconds > 0
        assert cold.overhead_seconds == pytest.approx(
            cold.codegen_seconds + cold.build_seconds)

    def test_warm_eval_pays_nothing(self, fresh_runtime):
        _x, y = _arrays()
        hpl.eval(scale)(y, Double(2.0))
        warm = hpl.eval(scale)(y, Double(2.0))
        assert warm.from_cache
        assert warm.codegen_seconds == 0.0
        assert warm.build_seconds == 0.0
        assert warm.overhead_seconds == 0.0

    def test_overhead_matches_stats_totals(self, fresh_runtime):
        _x, y = _arrays()
        cold = hpl.eval(scale)(y, Double(2.0))
        stats = hpl.get_runtime().stats
        assert stats.codegen_seconds == pytest.approx(
            cold.codegen_seconds)
        assert stats.build_seconds == pytest.approx(cold.build_seconds)

    def test_new_signature_pays_overhead_again(self, fresh_runtime):
        _x, y = _arrays()
        hpl.eval(scale)(y, Double(2.0))
        x2, y2 = _arrays()
        other = hpl.eval(axpy)(y2, x2, Double(2.0))   # different kernel
        assert not other.from_cache
        assert other.overhead_seconds > 0
