"""EvalResult time decomposition — the numbers behind Fig. 8.

``kernel_seconds`` / ``transfer_seconds`` / ``overhead_seconds`` carve
one invocation's cost into simulated kernel execution, simulated PCIe
traffic, and wall-clock HPL overhead (capture + codegen + build).  The
overhead benchmark depends on this decomposition being exact, so it is
pinned here against the underlying events and stats.
"""

from __future__ import annotations

import pytest

import repro.hpl as hpl
from repro.hpl import Array, Double, double_, idx


def scale(y, a):
    y[idx] = a * y[idx]


def axpy(y, x, a):
    y[idx] = a * x[idx] + y[idx]


def _arrays(n=64):
    x = Array(double_, n)
    y = Array(double_, n)
    x.data[:] = 1.5
    y.data[:] = 2.0
    return x, y


class TestKernelSeconds:
    def test_matches_the_kernel_event(self, fresh_runtime):
        _x, y = _arrays()
        result = hpl.eval(scale)(y, Double(2.0))
        assert result.kernel_seconds == pytest.approx(
            result.kernel_event.duration)
        assert result.kernel_seconds > 0

    def test_is_simulated_not_wall_time(self, fresh_runtime):
        # the simulated duration comes from the cost model: identical
        # launches on a fresh device produce identical durations, which
        # would be wildly improbable for wall-clock measurements
        _x, y = _arrays()
        r1 = hpl.eval(scale)(y, Double(2.0))
        r2 = hpl.eval(scale)(y, Double(2.0))
        assert r1.kernel_seconds == pytest.approx(r2.kernel_seconds)


class TestTransferSeconds:
    def test_sums_the_h2d_events_of_this_eval(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        assert len(result.transfer_events) == 2      # x and y uploads
        assert result.transfer_seconds == pytest.approx(
            sum(e.duration for e in result.transfer_events))
        assert result.transfer_seconds > 0

    def test_warm_eval_pays_no_transfers(self, fresh_runtime):
        x, y = _arrays()
        hpl.eval(axpy)(y, x, Double(2.0))
        warm = hpl.eval(axpy)(y, x, Double(2.0))
        assert warm.transfer_events == []
        assert warm.transfer_seconds == 0.0

    def test_agrees_with_runtime_stats(self, fresh_runtime):
        x, y = _arrays()
        result = hpl.eval(axpy)(y, x, Double(2.0))
        stats = hpl.get_runtime().stats
        assert stats.h2d_seconds == pytest.approx(result.transfer_seconds)
        assert stats.transfer_seconds == pytest.approx(
            result.transfer_seconds)     # no d2h yet
        y.read()
        assert stats.d2h_seconds > 0
        assert stats.transfer_seconds == pytest.approx(
            stats.h2d_seconds + stats.d2h_seconds)


class TestOverheadSeconds:
    def test_cold_eval_pays_codegen_plus_build(self, fresh_runtime):
        _x, y = _arrays()
        cold = hpl.eval(scale)(y, Double(2.0))
        assert not cold.from_cache
        assert cold.codegen_seconds > 0
        assert cold.build_seconds > 0
        assert cold.overhead_seconds == pytest.approx(
            cold.codegen_seconds + cold.build_seconds)

    def test_warm_eval_pays_nothing(self, fresh_runtime):
        _x, y = _arrays()
        hpl.eval(scale)(y, Double(2.0))
        warm = hpl.eval(scale)(y, Double(2.0))
        assert warm.from_cache
        assert warm.codegen_seconds == 0.0
        assert warm.build_seconds == 0.0
        assert warm.overhead_seconds == 0.0

    def test_overhead_matches_stats_totals(self, fresh_runtime):
        _x, y = _arrays()
        cold = hpl.eval(scale)(y, Double(2.0))
        stats = hpl.get_runtime().stats
        assert stats.codegen_seconds == pytest.approx(
            cold.codegen_seconds)
        assert stats.build_seconds == pytest.approx(cold.build_seconds)

    def test_new_signature_pays_overhead_again(self, fresh_runtime):
        _x, y = _arrays()
        hpl.eval(scale)(y, Double(2.0))
        x2, y2 = _arrays()
        other = hpl.eval(axpy)(y2, x2, Double(2.0))   # different kernel
        assert not other.from_cache
        assert other.overhead_seconds > 0
