"""HPL type objects and host scalar containers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hpl import (Double, Float, Int, Long, Uint, double_, float_,
                       int_, long_, uint_)
from repro.hpl import dtypes as D
from repro.hpl.scalars import HostScalar


class TestHPLTypes:
    @pytest.mark.parametrize("t,np_dtype,size", [
        (int_, np.int32, 4), (uint_, np.uint32, 4),
        (long_, np.int64, 8), (float_, np.float32, 4),
        (double_, np.float64, 8),
    ])
    def test_numpy_mapping(self, t, np_dtype, size):
        assert t.np_dtype == np.dtype(np_dtype)
        assert t.itemsize == size

    def test_names_are_opencl_spellings(self):
        assert str(double_) == "double" and str(uint_) == "uint"

    def test_roundtrip_from_numpy(self):
        assert D.from_numpy_dtype(np.float32) is float_
        assert D.from_numpy_dtype(np.int64) is long_

    def test_promotion_float_wins(self):
        assert D.promote(int_, float_) is float_
        assert D.promote(float_, double_) is double_

    def test_promotion_int_ranks(self):
        assert D.promote(int_, long_) is long_
        assert D.promote(int_, uint_) is uint_

    def test_infer_scalar_types(self):
        assert D.infer_scalar_type(3) is int_
        assert D.infer_scalar_type(2 ** 40) is long_
        assert D.infer_scalar_type(1.5) is double_
        assert D.infer_scalar_type(np.float32(1.5)) is float_
        assert D.infer_scalar_type(True) is int_

    def test_infer_rejects_non_scalars(self):
        with pytest.raises(TypeError):
            D.infer_scalar_type("hello")


class TestHostScalars:
    def test_value_roundtrip(self):
        a = Double(2.5)
        assert a.value == 2.5 and float(a) == 2.5

    def test_int_coercion(self):
        assert Int(3.9).value == 3

    def test_float_coercion(self):
        assert isinstance(Float(2).value, float)

    def test_setter(self):
        a = Int(0)
        a.value = 7
        assert int(a) == 7

    def test_set_chains(self):
        assert Double(0).set(1.5).value == 1.5

    def test_repr(self):
        assert "Int" in repr(Int(3))

    def test_default_zero(self):
        assert Uint().value == 0

    def test_host_scalars_outside_kernel_are_containers(self):
        assert isinstance(Long(1), HostScalar)

    @given(st.integers(-2**31, 2**31 - 1))
    def test_int_roundtrip_property(self, v):
        assert Int(v).value == v
