"""Fault-tolerant cluster execution: retry, quarantine, re-balance.

Every test asserts the recovery invariant the benchsuite gate relies
on: results under faults are bit-identical to the fault-free run.

The module also honours an externally-installed ``HPL_FAULTS`` plan
(see the CI ``faults`` job, which runs this file under three seeded
plans): tests install their own plan explicitly, so a plan from the
environment only governs :class:`TestUnderEnvironmentPlan`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.hpl as hpl
from repro import trace
from repro.errors import ClusterExecutionError
from repro.hpl import (Float, FailureSummary, calibration, cluster_eval,
                       float_)
from repro.hpl.cluster import Cluster, ClusterResult, DistributedArray
from repro.ocl import faults
from repro.ocl.platform import reset_platform_devices

N = 4000


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    calibration().reset()
    faults.configure(None)
    yield
    faults.configure(None)
    calibration().reset()
    reset_platform_devices()
    hpl.reset_runtime()


def saxpy_part(y, x, a, offset, count):
    y[hpl.idx] = a * x[hpl.idx] + y[hpl.idx]


def _problem(cluster, n=N, seed=11):
    rng = np.random.default_rng(seed)
    xd = rng.random(n).astype(np.float32)
    yd = rng.random(n).astype(np.float32)
    x = DistributedArray(float_, n, cluster, data=xd)
    y = DistributedArray(float_, n, cluster, data=yd)
    return (y, x, Float(2.0)), yd


def _expected(n=N, seed=11):
    """The fault-free reference, computed once per plan/schedule."""
    faults.configure(None)
    hpl.reset_runtime()
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c, n, seed)
    cluster_eval(saxpy_part, c, *args)
    out = args[0].gather()
    hpl.reset_runtime()
    return out


def _run(plan, schedule, n=N, **kwargs):
    hpl.reset_runtime()
    faults.configure(plan)
    c = Cluster(hpl.get_devices())
    args, _ = _problem(c, n)
    result = cluster_eval(saxpy_part, c, *args, schedule=schedule,
                          **kwargs)
    out = args[0].gather()
    faults.configure(None)
    return out, result, c


class TestHealthyRuns:
    def test_result_is_a_plain_list_with_clean_summary(self):
        out, result, _c = _run(None, "uniform")
        assert isinstance(result, ClusterResult)
        assert isinstance(result, list) and len(result) > 0
        assert isinstance(result.failures, FailureSummary)
        assert result.failures.clean
        assert result.failures.retries == 0
        assert np.array_equal(out, _expected())


class TestTransientRecovery:
    @pytest.mark.parametrize("schedule", ["uniform", "weighted",
                                          "dynamic"])
    def test_retry_reproduces_exact_results(self, schedule):
        out, result, _c = _run(
            "device=Tesla kind=transient op=kernel nth=1", schedule)
        f = result.failures
        assert f.transient_failures >= 1 and f.retries >= 1
        assert f.backoff_seconds > 0
        assert not f.devices_lost
        assert np.array_equal(out, _expected())

    def test_transient_h2d_failure_is_retried(self):
        out, result, _c = _run(
            "device=Tesla kind=transient op=write nth=1", "uniform")
        assert result.failures.retries >= 1
        assert np.array_equal(out, _expected())

    def test_backoff_grows_per_attempt_and_is_capped(self):
        from repro.hpl.cluster import _backoff_delay

        delays = [_backoff_delay(1e-4, k) for k in range(6)]
        assert delays[0] == pytest.approx(1e-4)
        assert delays[1] == pytest.approx(2e-4)
        assert delays[3] == delays[4] == delays[5]  # capped

    def test_transient_build_failure_is_retried(self):
        out, result, _c = _run(
            "device=Tesla kind=transient op=build nth=1", "uniform")
        assert result.failures.retries >= 1
        assert np.array_equal(out, _expected())


class TestDeviceLossRecovery:
    @pytest.mark.parametrize("schedule", ["uniform", "weighted",
                                          "dynamic"])
    def test_lost_device_is_quarantined_and_work_rebalanced(
            self, schedule):
        out, result, c = _run("device=Quadro kind=lost at=0", schedule)
        f = result.failures
        assert f.devices_lost == ["SimCL Quadro FX 380#1"]
        assert f.requeued_items > 0
        assert len(c.devices) == len(hpl.get_devices()) - 1
        assert [d.label for d in c.lost] == f.devices_lost
        assert np.array_equal(out, _expected())

    def test_mid_run_loss_requeues_stranded_chunks(self):
        # the device dies after its simulated clock passes the onset,
        # so chunks it already computed are stranded and must re-run
        out, result, _c = _run("device=Tesla kind=lost at=0.000001",
                               "dynamic")
        f = result.failures
        assert f.devices_lost == ["SimCL Tesla C2050/C2070#0"]
        assert f.requeued_items > 0
        assert np.array_equal(out, _expected())

    def test_exhausted_retries_quarantine_the_device(self):
        out, result, _c = _run(
            "device=Quadro kind=transient op=kernel nth=1 count=99",
            "uniform", max_retries=2)
        f = result.failures
        assert f.retries == 2
        assert f.devices_lost == ["SimCL Quadro FX 380#1"]
        assert np.array_equal(out, _expected())

    def test_losing_every_device_raises(self):
        with pytest.raises(ClusterExecutionError):
            _run("device=* kind=lost at=0", "uniform")

    def test_quarantined_cluster_serves_followup_evals(self):
        _out, _result, c = _run("device=Quadro kind=lost at=0",
                                "uniform")
        # the cluster keeps working with the survivors: a fresh eval
        # re-plans over the remaining devices (the fault plan is gone)
        args, _ = _problem(c)
        result = cluster_eval(saxpy_part, c, *args)
        assert result.failures.clean
        assert np.array_equal(args[0].gather(), _expected())


class TestStraggler:
    def test_slow_device_changes_time_not_results(self):
        out, result, _c = _run("device=Quadro kind=slow factor=16",
                               "dynamic")
        assert result.failures.clean
        assert np.array_equal(out, _expected())


class TestObservability:
    def test_metrics_and_spans_record_recovery(self):
        trace.reset_metrics()
        registry = trace.get_registry()
        r0 = registry.counter("cluster.retries").value
        l0 = registry.counter("cluster.device_lost").value
        q0 = registry.counter("cluster.requeued_items").value
        tracer = trace.enable(fresh=True)
        try:
            _run("device=Tesla kind=transient op=kernel nth=1;"
                 "device=Quadro kind=lost at=0", "uniform")
        finally:
            trace.disable()
        assert registry.counter("cluster.retries").value > r0
        assert registry.counter("cluster.device_lost").value == l0 + 1
        assert registry.counter("cluster.requeued_items").value > q0
        names = [s.name for s in tracer.spans()]
        assert "fault_inject" in names
        assert "recover" in names
        actions = {s.attrs.get("action") for s in tracer.spans()
                   if s.name == "recover"}
        assert {"retry", "quarantine", "requeue"} <= actions

    def test_faults_injected_counter_counts_injections(self):
        registry = trace.get_registry()
        before = registry.counter("simcl.faults_injected").value
        _run("device=Tesla kind=transient op=kernel nth=1", "uniform")
        assert registry.counter("simcl.faults_injected").value > before


class TestGatherScatterAfterRecovery:
    def test_gather_skips_empty_partitions_without_holes(self):
        # more blocks than elements leaves None partitions around
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        data = np.arange(2, dtype=np.float32)
        d = DistributedArray(float_, 2, c, data=data)
        d.repartition([(0, 1), (1, 1), (1, 2)])
        assert d.parts[1] is None
        assert np.array_equal(d.gather(), data)
        assert all(e is not None for e in d.last_gather_events)

    def test_scatter_ignores_stale_prerepartition_views(self):
        hpl.reset_runtime()
        c = Cluster(hpl.get_devices())
        d = DistributedArray(float_, 8, c,
                             data=np.zeros(8, np.float32))
        stale_parts = list(d.parts)
        d.repartition([(0, 4), (4, 8), (8, 8)])
        fresh = np.arange(8, dtype=np.float32)
        d.scatter(fresh)
        assert np.array_equal(d.gather(), fresh)
        # the old views must not have been written through
        for part in stale_parts:
            if part is not None:
                assert part._host_valid

    def test_scatter_after_recovery_layout(self):
        _out, _result, c = _run("device=Quadro kind=lost at=0",
                                "dynamic")
        args, _ = _problem(c)
        y = args[0]
        fresh = np.linspace(0, 1, N).astype(np.float32)
        y.scatter(fresh)
        assert np.array_equal(y.gather(), fresh)


class TestUnderEnvironmentPlan:
    """Generic correctness under whatever ``HPL_FAULTS`` the CI job
    installs — the same invariant, any seeded plan."""

    @pytest.mark.parametrize("schedule", ["uniform", "weighted",
                                          "dynamic"])
    def test_results_identical_under_ambient_plan(self, monkeypatch,
                                                  schedule):
        import os

        plan_text = os.environ.get(faults.ENV_VAR)
        if not plan_text:
            pytest.skip("no ambient HPL_FAULTS plan")
        out, result, _c = _run(plan_text, schedule)
        assert np.array_equal(out, _expected())
