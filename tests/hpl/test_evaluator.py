"""eval() invocation semantics: domains, device selection, caching."""

import numpy as np
import pytest

import repro.hpl as hpl
from repro.errors import BuildProgramFailure, DomainError, HPLError
from repro.hpl import (Array, Double, Float, Int, double_, float_, gidx,
                       get_device, get_devices, get_runtime, idx, idy,
                       int_, lidx)


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


def fill_ids(a):
    a[idx] = idx


class TestDomains:
    def test_default_global_domain_is_first_arg_shape(self):
        a = Array(int_, 12)
        hpl.eval(fill_ids)(a)
        assert np.array_equal(a.read(), np.arange(12))

    def test_default_2d_domain(self):
        def k(a, w):
            a[idx][idy] = idx * 100 + idy

        a = Array(int_, 3, 5)
        hpl.eval(k)(a, Int(5))
        expected = np.add.outer(np.arange(3) * 100, np.arange(5))
        assert np.array_equal(a.read(), expected)

    def test_explicit_global_domain(self):
        a = Array(int_, 16).fill(0)
        hpl.eval(fill_ids).global_(4)(a)
        assert np.array_equal(a.read()[:4], np.arange(4))
        assert np.all(a.read()[4:] == 0)

    def test_explicit_local_domain_group_ids(self):
        def k(a):
            a[idx] = gidx * 1000 + lidx

        a = Array(int_, 12)
        hpl.eval(k).global_(12).local_(4)(a)
        expected = [g * 1000 + l for g in range(3) for l in range(4)]
        assert np.array_equal(a.read(), expected)

    def test_local_must_divide_global(self):
        # a bad .local_() is a DomainError naming both domains at launch
        # time, not an opaque engine error from deep inside the run
        a = Array(int_, 10)
        with pytest.raises(DomainError, match=r"\(3,\).*\(10,\)"):
            hpl.eval(fill_ids).global_(10).local_(3)(a)

    def test_local_dimensionality_must_match(self):
        a = Array(int_, 4, 4)

        def k(a):
            a[idx][idy] = 1

        with pytest.raises(DomainError):
            hpl.eval(k).global_(4, 4).local_(2)(a)

    def test_scalar_only_args_need_explicit_domain(self):
        def k(n):
            i = Int()
            i.assign(n)

        with pytest.raises(DomainError):
            hpl.eval(k)(Int(5))

    def test_invalid_domain_values(self):
        with pytest.raises(DomainError):
            hpl.eval(fill_ids).global_(0)
        with pytest.raises(DomainError):
            hpl.eval(fill_ids).global_(1, 1, 1, 1)


class TestDeviceSelection:
    def test_default_is_first_non_cpu(self):
        a = Array(int_, 4)
        result = hpl.eval(fill_ids)(a)
        assert "Tesla" in result.device.name

    def test_device_by_name_fragment(self):
        dev = get_device("quadro")
        assert "Quadro" in dev.name

    def test_device_by_index(self):
        assert get_device(0) is get_runtime().devices[0]

    def test_unknown_device_rejected(self):
        with pytest.raises(HPLError, match="no device"):
            get_device("cerebras")

    def test_eval_on_named_device(self):
        a = Array(int_, 4)
        result = hpl.eval(fill_ids).device("Xeon")(a)
        assert "Xeon" in result.device.name
        assert np.array_equal(a.read(), np.arange(4))

    def test_double_kernel_rejected_on_quadro(self):
        def k(a):
            a[idx] = a[idx] * 2.0

        a = Array(double_, 4)
        with pytest.raises(BuildProgramFailure, match="double"):
            hpl.eval(k).device("Quadro")(a)

    def test_float_kernel_runs_on_quadro(self):
        def k(a):
            a[idx] = a[idx] + 1.5

        a = Array(float_, 4).fill(1.0)
        hpl.eval(k).device("Quadro")(a)
        assert np.all(a.read() == 2.5)

    def test_all_three_devices_listed(self):
        assert len(get_devices()) == 3


class TestCaching:
    def test_first_call_pays_overhead(self):
        a = Array(int_, 4)
        r1 = hpl.eval(fill_ids)(a)
        assert not r1.from_cache
        assert r1.codegen_seconds > 0 and r1.build_seconds > 0

    def test_second_call_is_cached(self):
        a = Array(int_, 4)
        hpl.eval(fill_ids)(a)
        r2 = hpl.eval(fill_ids)(a)
        assert r2.from_cache
        assert r2.overhead_seconds == 0.0

    def test_cache_keyed_per_device(self):
        def k(a):
            a[idx] = 1

        a = Array(float_, 4)
        hpl.eval(k).device("Tesla")(a)
        r = hpl.eval(k).device("Quadro")(a)
        assert not r.from_cache     # new device => new binary
        r2 = hpl.eval(k).device("Quadro")(a)
        assert r2.from_cache

    def test_stats_count_cache_hits(self):
        a = Array(int_, 4)
        rt = get_runtime()
        hpl.eval(fill_ids)(a)
        hpl.eval(fill_ids)(a)
        hpl.eval(fill_ids)(a)
        assert rt.stats.kernels_built == 1
        assert rt.stats.cache_hits == 2
        assert rt.stats.launches == 3

    def test_eval_result_exposes_source(self):
        a = Array(int_, 4)
        r = hpl.eval(fill_ids)(a)
        assert "__kernel void fill_ids" in r.source

    def test_simulated_times_positive(self):
        a = Array(double_, 1024).fill(1.0)

        def k(x):
            x[idx] = x[idx] * 2.0

        r = hpl.eval(k)(a)
        assert r.kernel_seconds > 0
        assert r.transfer_seconds > 0


class TestPaperExamples:
    """The three example codes of §IV, end to end."""

    def test_saxpy_figure3(self):
        myvector = np.zeros(1000)

        def saxpy(y, x, a):
            y[idx] = a * x[idx] + y[idx]

        x = Array(double_, 1000)
        y = Array(double_, 1000, data=myvector)
        x.data[:] = np.random.rand(1000)
        y.data[:] = np.random.rand(1000)
        x0, y0 = x.read().copy(), y.read().copy()
        a = Double(3.5)
        hpl.eval(saxpy)(y, x, a)
        assert np.allclose(y.read(), 3.5 * x0 + y0)
        assert np.allclose(myvector, 3.5 * x0 + y0)  # user storage

    def test_dot_product_figure4(self):
        N, M = 256, 32

        def dotp(v1, v2, pSums):
            i = Int()
            sharedM = Array(float_, M, mem=hpl.Local)
            sharedM[lidx] = v1[idx] * v2[idx]
            hpl.barrier(hpl.LOCAL)
            if hpl is None:
                return
            hpl.if_(lidx == 0)
            hpl.for_(i, 0, M)
            pSums[gidx] += sharedM[i]
            hpl.endfor_()
            hpl.endif_()

        v1 = Array(float_, N)
        v2 = Array(float_, N)
        pSums = Array(float_, N // M)
        v1.data[:] = np.random.rand(N).astype(np.float32)
        v2.data[:] = np.random.rand(N).astype(np.float32)
        hpl.eval(dotp).global_(N).local_(M)(v1, v2, pSums)
        result = sum(pSums(i) for i in range(N // M))
        expected = float(np.dot(v1.read().astype(np.float64),
                                v2.read().astype(np.float64)))
        assert np.isclose(result, expected, rtol=1e-4)

    def test_naive_transpose_figure10(self):
        def naive_transpose(dest, src):
            dest[idx][idy] = src[idy][idx]

        h, w = 24, 16
        src = Array(float_, h, w)
        dst = Array(float_, w, h)
        src.data[:] = np.random.rand(h, w).astype(np.float32)
        hpl.eval(naive_transpose)(dst, src)
        assert np.array_equal(dst.read(), src.read().T)
