"""Event lifecycle, wait lists, deferred queues, out-of-order DAG."""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from repro import trace
from repro.errors import InvalidValue, ProfilingInfoNotAvailable
from repro.ocl import TESLA_C2050, XEON_HOST, command_status

SRC = """
__kernel void twice(__global float* a) {
    int i = get_global_id(0);
    a[i] = 2.0f * a[i];
}
"""


def _setup(deferred=False, out_of_order=False, spec=TESLA_C2050):
    device = cl.Device(spec, "serial")
    ctx = cl.Context([device])
    queue = cl.CommandQueue(ctx, device, deferred=deferred,
                            out_of_order=out_of_order)
    return device, ctx, queue


class TestEventLifecycle:
    def test_eager_events_are_born_complete(self):
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.zeros(4, np.float32))
        assert event.status is command_status.COMPLETE
        assert event.is_complete
        assert event.wait() is event          # no-op, chainable

    def test_deferred_events_start_queued(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        assert event.status is command_status.QUEUED
        assert queue.pending == 1

    def test_profiling_info_needs_completion(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        with pytest.raises(ProfilingInfoNotAvailable):
            _ = event.duration_ns
        event.wait()
        assert event.duration_ns > 0

    def test_callback_fires_on_completion(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        seen = []
        event.add_callback(seen.append)
        assert seen == []
        queue.finish()
        assert seen == [event]
        # late registration fires immediately
        event.add_callback(seen.append)
        assert seen == [event, event]

    def test_wait_list_must_hold_events(self):
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        with pytest.raises(InvalidValue):
            queue.enqueue_write_buffer(buf, np.zeros(4, np.float32),
                                       wait_for=["not-an-event"])


class TestDeferredExecution:
    def test_nothing_runs_until_flush(self):
        _dev, ctx, queue = _setup(deferred=True)
        data = np.arange(4, dtype=np.float32)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=data.nbytes)
        program = cl.Program(ctx, SRC).build()
        kernel = program.create_kernel("twice")
        queue.enqueue_write_buffer(buf, data)
        kernel.set_arg(0, buf)
        queue.enqueue_nd_range_kernel(kernel, (4,))
        out = np.zeros(4, np.float32)
        read = queue.enqueue_read_buffer(buf, out)
        assert np.all(out == 0)               # still pending
        queue.finish()
        assert read.is_complete
        assert np.array_equal(out, 2 * data)

    def test_deferred_write_snapshots_host_memory(self):
        # OpenCL lets the host reuse its memory once enqueue returns
        _dev, ctx, queue = _setup(deferred=True)
        data = np.arange(4, dtype=np.float32)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=data.nbytes)
        queue.enqueue_write_buffer(buf, data)
        data[:] = -1.0                        # mutate after enqueue
        queue.finish()
        out = np.zeros(4, np.float32)
        queue.enqueue_read_buffer(buf, out)
        queue.finish()
        assert np.array_equal(out, np.arange(4, dtype=np.float32))

    def test_event_wait_drives_the_prefix(self):
        _dev, ctx, queue = _setup(deferred=True)
        data = np.arange(4, dtype=np.float32)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=data.nbytes)
        e1 = queue.enqueue_write_buffer(buf, data)
        out = np.zeros(4, np.float32)
        e2 = queue.enqueue_read_buffer(buf, out)
        e2.wait()                             # in-order: runs e1 first
        assert e1.is_complete and e2.is_complete
        assert np.array_equal(out, data)
        assert queue.pending == 0

    def test_clock_advances_only_on_execution(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 12)
        queue.enqueue_write_buffer(buf, np.zeros(1 << 10, np.float32))
        assert queue.clock == 0.0
        queue.finish()
        assert queue.clock > 0.0

    def test_eager_queue_drives_pending_dependencies(self):
        # an eager enqueue whose wait list lives on a deferred queue
        # executes the dependency first
        devA = cl.Device(TESLA_C2050, "serial")
        devB = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([devA, devB])
        qA = cl.CommandQueue(ctx, devA, deferred=True)
        qB = cl.CommandQueue(ctx, devB)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        dep = qA.enqueue_write_buffer(buf, np.ones(4, np.float32))
        out = np.zeros(4, np.float32)
        event = qB.enqueue_read_buffer(buf, out, wait_for=[dep])
        assert dep.is_complete and event.is_complete
        assert np.array_equal(out, np.ones(4, np.float32))


class TestDependencyTimeline:
    def test_start_waits_for_cross_queue_dependency(self):
        devA = cl.Device(TESLA_C2050, "serial")
        devB = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([devA, devB])
        qA = cl.CommandQueue(ctx, devA)
        qB = cl.CommandQueue(ctx, devB)
        big = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 20)
        dep = qA.enqueue_write_buffer(big,
                                      np.zeros(1 << 18, np.float32))
        small = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = qB.enqueue_write_buffer(small, np.zeros(4, np.float32),
                                        wait_for=[dep])
        assert event.profile_start >= dep.profile_end
        assert event.wait_list == (dep,)

    def test_independent_queues_overlap(self):
        devA = cl.Device(TESLA_C2050, "serial")
        devB = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([devA, devB])
        qA = cl.CommandQueue(ctx, devA)
        qB = cl.CommandQueue(ctx, devB)
        buf_a = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 16)
        buf_b = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 16)
        e_a = qA.enqueue_write_buffer(buf_a,
                                      np.zeros(1 << 14, np.float32))
        e_b = qB.enqueue_write_buffer(buf_b,
                                      np.zeros(1 << 14, np.float32))
        # no dependency: both start at their own device's time zero
        assert e_a.profile_start == 0
        assert e_b.profile_start == 0


class TestOutOfOrder:
    def test_schedules_by_dag_not_enqueue_order(self):
        devA = cl.Device(TESLA_C2050, "serial")
        devB = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([devA, devB])
        slow_q = cl.CommandQueue(ctx, devB, deferred=True)
        queue = cl.CommandQueue(ctx, devA, deferred=True,
                                out_of_order=True)
        big = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 20)
        slow = slow_q.enqueue_write_buffer(
            big, np.zeros(1 << 18, np.float32))
        bufs = [cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
                for _ in range(2)]
        blocked = queue.enqueue_write_buffer(
            bufs[0], np.zeros(4, np.float32), wait_for=[slow])
        free = queue.enqueue_write_buffer(
            bufs[1], np.zeros(4, np.float32))
        queue.finish()
        slow_q.finish()
        # the later-enqueued, dependency-free command ran first
        assert free.profile_start < blocked.profile_start
        assert blocked.profile_start >= slow.profile_end

    def test_out_of_order_property_flag(self):
        _dev, _ctx, queue = _setup(out_of_order=True)
        assert queue.out_of_order
        dev = cl.Device(TESLA_C2050, "serial")
        ctx = cl.Context([dev])
        via_props = cl.CommandQueue(
            ctx, dev,
            properties=cl.queue_properties.OUT_OF_ORDER_EXEC_MODE_ENABLE)
        assert via_props.out_of_order

    def test_wait_on_out_of_order_event_runs_only_its_deps(self):
        _dev, ctx, queue = _setup(deferred=True, out_of_order=True)
        a = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        b = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        e_a = queue.enqueue_write_buffer(a, np.ones(4, np.float32))
        e_b = queue.enqueue_write_buffer(b, np.ones(4, np.float32))
        out = np.zeros(4, np.float32)
        e_read = queue.enqueue_read_buffer(a, out, wait_for=[e_a])
        e_read.wait()
        assert e_a.is_complete and e_read.is_complete
        assert not e_b.is_complete          # unrelated branch untouched
        queue.finish()
        assert e_b.is_complete


class TestMarkerAndHelpers:
    def test_marker_completes_after_everything(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        e1 = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        marker = queue.enqueue_marker()
        marker.wait()
        assert e1.is_complete
        assert marker.profile_start >= e1.profile_end
        assert marker.duration == 0.0

    def test_wait_for_events_helper(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        events = [queue.enqueue_write_buffer(buf,
                                             np.ones(4, np.float32))
                  for _ in range(3)]
        cl.wait_for_events(events)
        assert all(e.is_complete for e in events)


class TestCopyBufferMetrics:
    def test_copy_buffer_counts_in_registry(self):
        registry = trace.get_registry()
        before_n = registry.counter("simcl.d2d_transfers").value
        before_b = registry.counter("simcl.d2d_bytes").value
        _dev, ctx, queue = _setup()
        src = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64)
        dst = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64)
        queue.enqueue_write_buffer(src, np.arange(16, dtype=np.float32))
        event = queue.enqueue_copy_buffer(src, dst)
        assert event.command == cl.command_type.COPY_BUFFER
        assert registry.counter("simcl.d2d_transfers").value \
            == before_n + 1
        assert registry.counter("simcl.d2d_bytes").value \
            == before_b + 64


class TestCrossQueueMixedModes:
    """wait_for= across one deferred and one immediate queue."""

    def _two_queues(self):
        device = cl.Device(TESLA_C2050, "serial")
        host = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([device, host])
        dq = cl.CommandQueue(ctx, device, deferred=True)
        eq = cl.CommandQueue(ctx, host)
        return ctx, dq, eq

    def test_immediate_enqueue_drives_deferred_dependency(self):
        # an eager command depending on a queued deferred event must
        # execute that dependency first, then start no earlier than it
        ctx, dq, eq = self._two_queues()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        dep = dq.enqueue_write_buffer(buf, np.ones(4, np.float32))
        assert dep.status is command_status.QUEUED
        out = np.zeros(4, np.float32)
        ev = eq.enqueue_read_buffer(buf, out, wait_for=[dep])
        assert dep.status is command_status.COMPLETE
        assert ev.status is command_status.COMPLETE
        assert np.array_equal(out, np.ones(4, np.float32))
        assert ev.start_ns >= dep.end_ns

    def test_deferred_command_waits_for_immediate_event(self):
        # the immediate event is already complete when the deferred
        # queue flushes; the deferred command starts after its end
        ctx, dq, eq = self._two_queues()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        dep = eq.enqueue_write_buffer(buf, np.full(4, 3.0, np.float32))
        assert dep.status is command_status.COMPLETE
        out = np.zeros(4, np.float32)
        ev = dq.enqueue_read_buffer(buf, out, wait_for=[dep])
        assert ev.status is command_status.QUEUED
        ev.wait()
        assert np.array_equal(out, np.full(4, 3.0, np.float32))
        assert ev.start_ns >= dep.end_ns

    def test_chain_alternating_queues_preserves_order(self):
        ctx, dq, eq = self._two_queues()
        a = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        b = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        w = dq.enqueue_write_buffer(a, np.ones(4, np.float32))
        c = eq.enqueue_copy_buffer(a, b, wait_for=[w])
        out = np.zeros(4, np.float32)
        r = dq.enqueue_read_buffer(b, out, wait_for=[c])
        r.wait()
        assert np.array_equal(out, np.ones(4, np.float32))
        assert w.end_ns <= c.start_ns and c.end_ns <= r.start_ns


class TestErrorPropagationThroughMarkers:
    def _failing_queue(self, plan):
        cl.faults.configure(plan)
        device = cl.Device(TESLA_C2050, "serial")
        ctx = cl.Context([device])
        queue = cl.CommandQueue(ctx, device, deferred=True)
        return ctx, queue

    def teardown_method(self):
        cl.faults.configure(None)

    def test_marker_propagates_dependency_failure(self):
        from repro.errors import OutOfResources

        ctx, queue = self._failing_queue(
            "device=* kind=transient op=write nth=1")
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        w = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        marker = queue.enqueue_marker()
        out = np.zeros(4, np.float32)
        r = queue.enqueue_read_buffer(buf, out, wait_for=[marker])
        r.drive()
        # the write's failure flows through the marker to the read
        assert w.status is command_status.OUT_OF_RESOURCES
        assert marker.status is command_status.OUT_OF_RESOURCES
        assert r.status is command_status.OUT_OF_RESOURCES
        assert r.is_failed and not r.is_complete
        with pytest.raises(OutOfResources):
            marker.wait()
        assert np.array_equal(out, np.zeros(4, np.float32))

    def test_marker_failure_does_not_strand_siblings(self):
        ctx, queue = self._failing_queue(
            "device=* kind=transient op=write nth=1")
        good = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        bad = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        wb = queue.enqueue_write_buffer(bad, np.ones(4, np.float32))
        wg = queue.enqueue_write_buffer(good, np.ones(4, np.float32))
        marker = queue.enqueue_marker(wait_for=[wb, wg])
        marker.drive()
        assert wb.is_failed and wg.is_complete
        assert marker.is_failed

    def test_wait_for_events_raises_but_drives_all(self):
        from repro.errors import OutOfResources

        ctx, queue = self._failing_queue(
            "device=* kind=transient op=write nth=1")
        b1 = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        b2 = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        e1 = queue.enqueue_write_buffer(b1, np.ones(4, np.float32))
        e2 = queue.enqueue_write_buffer(b2, np.ones(4, np.float32))
        with pytest.raises(OutOfResources):
            cl.wait_for_events([e1, e2])
        # the healthy sibling was still driven to completion
        assert e1.is_failed and e2.is_complete


class TestEventCancellation:
    """SimCL extension: tearing down queued work before it runs."""

    def test_cancel_queued_command_never_runs_payload(self):
        from repro.errors import CommandCancelled

        _dev, ctx, queue = _setup(deferred=True)
        data = np.arange(4, dtype=np.float32)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=data.nbytes)
        queue.enqueue_write_buffer(buf, data).wait()
        before = trace.get_registry().counter(
            "simcl.cancelled_events").value
        doomed = queue.enqueue_write_buffer(
            buf, np.full(4, -9.0, np.float32))
        assert doomed.cancel() is True
        assert doomed.status is command_status.CANCELLED
        assert doomed.is_cancelled and doomed.is_failed
        assert not doomed.is_complete
        assert queue.pending == 0
        with pytest.raises(CommandCancelled):
            doomed.wait()
        assert trace.get_registry().counter(
            "simcl.cancelled_events").value == before + 1
        # the buffer still holds the first write: the payload never ran
        out = np.zeros(4, np.float32)
        queue.enqueue_read_buffer(buf, out).wait()
        assert np.array_equal(out, data)

    def test_cancel_is_refused_once_terminal_or_eager(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        done = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        done.wait()
        assert done.cancel() is False           # already COMPLETE
        assert done.is_complete
        _dev2, ctx2, eager = _setup()
        buf2 = cl.Buffer(ctx2, cl.mem_flags.READ_WRITE, size=16)
        ran = eager.enqueue_write_buffer(buf2, np.ones(4, np.float32))
        assert ran.cancel() is False            # ran inside enqueue

    def test_cancellation_propagates_to_same_queue_dependents(self):
        _dev, ctx, queue = _setup(deferred=True, out_of_order=True)
        a = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        b = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        root = queue.enqueue_write_buffer(a, np.ones(4, np.float32))
        child = queue.enqueue_copy_buffer(a, b, wait_for=[root])
        free = queue.enqueue_write_buffer(b, np.ones(4, np.float32))
        assert root.cancel() is True
        assert child.status is command_status.CANCELLED
        assert free.status is command_status.QUEUED  # unrelated branch
        queue.finish()
        assert free.is_complete

    def test_cancellation_abandons_cross_queue_dependents(self):
        devA = cl.Device(TESLA_C2050, "serial")
        devB = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([devA, devB])
        qA = cl.CommandQueue(ctx, devA, deferred=True)
        qB = cl.CommandQueue(ctx, devB, deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        dep = qA.enqueue_write_buffer(buf, np.ones(4, np.float32))
        out = np.zeros(4, np.float32)
        downstream = qB.enqueue_read_buffer(buf, out, wait_for=[dep])
        assert dep.cancel() is True
        downstream.drive()
        assert downstream.status is command_status.CANCELLED
        assert np.array_equal(out, np.zeros(4, np.float32))

    def test_cancel_pending_sweeps_the_queue(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64)
        events = [queue.enqueue_write_buffer(buf,
                                             np.ones(4, np.float32))
                  for _ in range(3)]
        assert queue.pending == 3
        assert queue.cancel_pending() == 3
        assert queue.pending == 0
        assert all(e.is_cancelled for e in events)

    def test_callbacks_fire_on_cancellation(self):
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        seen = []
        event.add_callback(seen.append)
        event.cancel()
        assert seen == [event] and event.is_cancelled


class TestCallbackSafety:
    """A raising callback must not corrupt queue processing."""

    def test_raising_callback_is_contained_and_counted(self):
        registry = trace.get_registry()
        before = registry.counter("simcl.callback_errors").value
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        event = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        seen = []

        def boom(_e):
            raise RuntimeError("callback bug")

        event.add_callback(boom)
        event.add_callback(seen.append)     # must still fire
        queue.finish()                      # must not raise
        assert event.is_complete
        assert seen == [event]
        assert registry.counter("simcl.callback_errors").value \
            == before + 1
        # immediate-fire path (already-terminal event) is guarded too
        event.add_callback(boom)
        assert registry.counter("simcl.callback_errors").value \
            == before + 2
