"""C arithmetic semantics: truncating division, wrapping, shifts,
conversions — checked on both engines and property-tested against
Python models of the C rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocl.engines.carith import c_idiv, c_imod, c_shl, to_dtype


def c_div_model(a, b):
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


class TestCarithHelpers:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_trunc_division_matches_c(self, a, b):
        got = int(c_idiv(np.int32(a), np.int32(b)))
        assert got == c_div_model(a, b)

    @given(st.integers(-1000, 1000),
           st.integers(-1000, 1000).filter(lambda x: x != 0))
    def test_remainder_identity(self, a, b):
        q = int(c_idiv(np.int32(a), np.int32(b)))
        r = int(c_imod(np.int32(a), np.int32(b)))
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(st.integers(-100, 100))
    def test_division_by_zero_yields_zero(self, a):
        assert int(c_idiv(np.int32(a), np.int32(0))) == 0
        assert int(c_imod(np.int32(a), np.int32(0))) == 0

    def test_array_division(self):
        a = np.array([7, -7, 7, -7], np.int32)
        b = np.array([2, 2, -2, -2], np.int32)
        assert c_idiv(a, b).tolist() == [3, -3, -3, 3]
        assert c_imod(a, b).tolist() == [1, -1, 1, -1]

    def test_shift_amount_wraps_at_bit_width(self):
        assert int(c_shl(np.int32(1), np.int32(33))) == 2

    @given(st.floats(-1e6, 1e6))
    def test_float_to_int_truncates_toward_zero(self, x):
        got = int(to_dtype(np.float64(x), np.dtype(np.int32))[()])
        assert got == int(x)

    def test_nan_to_int_is_zero(self):
        assert int(to_dtype(np.float32(np.nan),
                            np.dtype(np.int32))[()]) == 0


class TestKernelSemantics:
    def test_negative_int_division(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a,
                                 __global const int* b) {
            int i = get_global_id(0);
            o[i] = a[i] / b[i];
        }"""
        a = np.array([7, -7, 7, -7, 9], np.int32)
        b = np.array([2, 2, -2, -2, 3], np.int32)
        o = np.zeros(5, np.int32)
        cl_run(any_engine_device, src, "f", [o, a, b], (5,))
        assert o.tolist() == [3, -3, -3, 3, 3]

    def test_negative_modulo(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = a[i] % 3;
        }"""
        a = np.array([5, -5, 4, -4], np.int32)
        o = np.zeros(4, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (4,))
        assert o.tolist() == [2, -2, 1, -1]

    def test_int32_wraparound(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            o[get_global_id(0)] = 2147483647 + 1;
        }"""
        o = np.zeros(2, np.int32)
        cl_run(any_engine_device, src, "f", [o], (2,))
        assert np.all(o == np.int32(-2147483648))

    def test_uint_wraparound(self, any_engine_device, cl_run):
        src = """__kernel void f(__global uint* o, uint x) {
            o[get_global_id(0)] = x - 1u;
        }"""
        o = np.zeros(1, np.uint32)
        cl_run(any_engine_device, src, "f", [o, np.uint32(0)], (1,))
        assert o[0] == np.uint32(4294967295)

    def test_float_to_int_conversion_in_kernel(self, any_engine_device,
                                               cl_run):
        src = """__kernel void f(__global int* o,
                                 __global const float* a) {
            int i = get_global_id(0);
            o[i] = (int)a[i];
        }"""
        a = np.array([1.9, -1.9, 0.5, -0.5], np.float32)
        o = np.zeros(4, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (4,))
        assert o.tolist() == [1, -1, 0, 0]

    def test_integer_promotion_char(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o,
                                 __global const char* a) {
            int i = get_global_id(0);
            o[i] = a[i] * 2;
        }"""
        a = np.array([100, -100], np.int8)
        o = np.zeros(2, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (2,))
        assert o.tolist() == [200, -200]  # promoted to int, no wrap

    def test_long_arithmetic(self, any_engine_device, cl_run):
        src = """__kernel void f(__global long* o, long x) {
            o[get_global_id(0)] = x * 1000000007L;
        }"""
        o = np.zeros(1, np.int64)
        cl_run(any_engine_device, src, "f", [o, np.int64(12345)], (1,))
        assert o[0] == 12345 * 1000000007

    def test_mixed_float_int_promotes_to_float(self, any_engine_device,
                                               cl_run):
        src = """__kernel void f(__global float* o) {
            int i = get_global_id(0);
            o[i] = i / 2;
            o[i] += i / 2.0f;
        }"""
        o = np.zeros(5, np.float32)
        cl_run(any_engine_device, src, "f", [o], (5,))
        expected = [i // 2 + i / 2.0 for i in range(5)]
        assert np.allclose(o, expected)

    def test_bitwise_ops(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = ((a[i] & 0xF) | 0x10) ^ 0x3;
        }"""
        a = np.arange(8, dtype=np.int32) * 7
        o = np.zeros(8, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (8,))
        assert np.array_equal(o, ((a & 0xF) | 0x10) ^ 0x3)

    def test_unary_not(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = !a[i];
        }"""
        a = np.array([0, 1, -5, 0], np.int32)
        o = np.zeros(4, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (4,))
        assert o.tolist() == [1, 0, 0, 1]

    def test_float_division_by_zero_gives_inf(self, any_engine_device,
                                              cl_run):
        src = """__kernel void f(__global float* o,
                                 __global const float* a) {
            int i = get_global_id(0);
            o[i] = a[i] / 0.0f;
        }"""
        a = np.array([1.0, -1.0], np.float32)
        o = np.zeros(2, np.float32)
        cl_run(any_engine_device, src, "f", [o, a], (2,))
        assert np.isinf(o[0]) and o[0] > 0 and o[1] < 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=1, max_size=16),
       st.integers(1, 1000))
def test_engines_agree_on_int_expression(values, divisor):
    """Differential property: both engines compute the same expression
    over arbitrary int inputs."""
    import repro.ocl as cl
    from tests.conftest import run_cl_kernel

    src = """__kernel void f(__global int* o, __global const int* a,
                             int d) {
        int i = get_global_id(0);
        o[i] = (a[i] / d) * 3 + (a[i] % d) - (a[i] >> 2);
    }"""
    a = np.array(values, np.int32)
    results = []
    for engine in ("vector", "serial"):
        device = cl.Device(cl.TESLA_C2050, engine)
        o = np.zeros(len(values), np.int32)
        run_cl_kernel(device, src, "f", [o, a.copy(), np.int32(divisor)],
                      (len(values),))
        results.append(o.copy())
    assert np.array_equal(results[0], results[1])
