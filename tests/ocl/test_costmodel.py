"""Cost model and coalescing-measurement tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.ocl as cl
from repro.ocl.costmodel import (CostCounters, count_transactions,
                                 kernel_time, transfer_time)


class TestCoalescingCounter:
    def test_fully_coalesced_warp(self):
        # 32 lanes, consecutive 4-byte addresses -> one 128 B segment
        addr = np.arange(32) * 4
        warps = np.zeros(32, dtype=np.int64)
        assert count_transactions(addr, warps, 128) == 1

    def test_strided_access_needs_more_segments(self):
        addr = np.arange(32) * 128
        warps = np.zeros(32, dtype=np.int64)
        assert count_transactions(addr, warps, 128) == 32

    def test_same_address_broadcast_is_one_transaction(self):
        addr = np.full(32, 4096)
        warps = np.zeros(32, dtype=np.int64)
        assert count_transactions(addr, warps, 128) == 1

    def test_two_warps_do_not_share_segments(self):
        addr = np.zeros(64, dtype=np.int64)
        warps = np.repeat([0, 1], 32)
        assert count_transactions(addr, warps, 128) == 2

    def test_empty(self):
        assert count_transactions(np.array([], dtype=np.int64),
                                  np.array([], dtype=np.int64), 128) == 0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=128))
    def test_bounds(self, addresses):
        """1 <= transactions <= lanes for a single warp."""
        addr = np.array(addresses, dtype=np.int64)
        warps = np.zeros(len(addr), dtype=np.int64)
        tx = count_transactions(addr, warps, 128)
        assert 1 <= tx <= len(addr)

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=64))
    def test_transactions_only_grow_with_extra_accesses(self, addresses):
        addr = np.array(addresses, dtype=np.int64)
        warps = np.zeros(len(addr), dtype=np.int64)
        t_all = count_transactions(addr, warps, 128)
        t_prefix = count_transactions(addr[:-1], warps[:-1], 128) \
            if len(addr) > 1 else 0
        assert t_all >= t_prefix


class TestKernelTime:
    def make(self, **kw):
        base = dict(work_items=1024, work_groups=8, alu_ops=1e6,
                    global_load_bytes=1 << 20,
                    global_load_transactions=8192, global_loads=262144)
        base.update(kw)
        return CostCounters(**base)

    def test_gpu_overlaps_compute_and_memory(self):
        c = self.make()
        t = kernel_time(c, cl.TESLA_C2050)
        assert t.total == pytest.approx(
            max(t.compute, t.memory) + t.barrier + t.launch)

    def test_cpu_adds_compute_and_memory(self):
        c = self.make()
        t = kernel_time(c, cl.XEON_HOST)
        assert t.total == pytest.approx(
            t.compute + t.memory + t.barrier + t.launch)

    def test_fp64_penalty(self):
        fast = kernel_time(self.make(), cl.TESLA_C2050).compute
        slow = kernel_time(self.make(alu_ops=0, fp64_ops=1e6),
                           cl.TESLA_C2050).compute
        assert slow == pytest.approx(fast / cl.TESLA_C2050.fp64_ratio)

    def test_fp64_on_unsupported_device_raises(self):
        with pytest.raises(ValueError):
            kernel_time(self.make(fp64_ops=10), cl.QUADRO_FX380)

    def test_more_compute_units_is_faster(self):
        from dataclasses import replace
        c = self.make(global_load_bytes=0, global_load_transactions=0)
        small = replace(cl.TESLA_C2050, compute_units=16)
        assert kernel_time(c, cl.TESLA_C2050).compute < \
            kernel_time(c, small).compute

    def test_scaled_counters(self):
        c = self.make()
        s = c.scaled(4.0)
        assert s.alu_ops == c.alu_ops * 4
        assert s.global_load_bytes == c.global_load_bytes * 4

    def test_merge_accumulates(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.alu_ops == 2e6

    def test_serial_baseline_slower_than_parallel_host(self):
        c = self.make()
        assert kernel_time(c, cl.XEON_SERIAL).total > \
            kernel_time(c, cl.XEON_HOST).total


class TestTransferTime:
    def test_latency_floor(self):
        assert transfer_time(0, cl.TESLA_C2050) == pytest.approx(
            cl.TESLA_C2050.transfer_latency_us * 1e-6)

    def test_bandwidth_term(self):
        one_gb = transfer_time(1 << 30, cl.TESLA_C2050)
        assert one_gb == pytest.approx(
            cl.TESLA_C2050.transfer_latency_us * 1e-6
            + (1 << 30) / (cl.TESLA_C2050.transfer_gbs * 1e9))

    def test_monotone_in_size(self):
        assert transfer_time(2 << 20, cl.TESLA_C2050) > \
            transfer_time(1 << 20, cl.TESLA_C2050)


class TestMeasuredCoalescing:
    """The engines must measure real coalescing differences."""

    def _counters(self, src, n, cl_run):
        device = cl.Device(cl.TESLA_C2050, "vector")
        a = np.zeros(n, dtype=np.float32)
        return cl_run(device, src, "f", [a], (n,)).counters

    def test_sequential_vs_strided_loads(self, cl_run):
        seq = """__kernel void f(__global float* a) {
            int i = get_global_id(0);
            a[i] = a[i] + 1.0f;
        }"""
        device = cl.Device(cl.TESLA_C2050, "vector")
        n = 4096
        a = np.zeros(2 * n, dtype=np.float32)
        ev_seq = cl_run(device, seq, "f", [a], (n,))

        strided = """__kernel void f(__global float* a) {
            int i = get_global_id(0);
            a[i * 2] = a[i * 2] + 1.0f;
        }"""
        ev_str = cl_run(device, strided, "f", [a], (n,))
        assert ev_str.counters.global_load_transactions > \
            ev_seq.counters.global_load_transactions

    def test_gather_costs_most(self, cl_run):
        device = cl.Device(cl.TESLA_C2050, "vector")
        n = 4096
        rng = np.random.default_rng(0)
        idx = rng.permutation(n).astype(np.int32)
        gather = """__kernel void f(__global float* o,
                __global const float* a, __global const int* idx) {
            int i = get_global_id(0);
            o[i] = a[idx[i]];
        }"""
        o = np.zeros(n, np.float32)
        a = rng.random(n).astype(np.float32)
        ev = cl_run(device, gather, "f", [o, a, idx], (n,))
        # random gather: far more transactions than the ~n*4/128 a
        # coalesced sweep of both arrays would need
        coalesced = 2 * (n * 4 // 128)
        assert ev.counters.global_load_transactions > 4 * coalesced
