"""The NumPy-codegen JIT engine: identity with the vector interpreter,
codegen engagement, cache behavior and interpreter fallback."""

from __future__ import annotations

import numpy as np
import pytest

import repro.hpl as hpl
import repro.ocl as cl
from repro import prof
from repro.hpl import reset_runtime
from repro.ocl import TESLA_C2050
from repro.ocl.engines import jit as jit_mod
from tests.conftest import run_cl_kernel

# loop + divergent branch + global/local traffic + barrier + atomic:
# one kernel that exercises every emission path worth comparing
KERNEL = """__kernel void mix(__global float* out,
                  __global const float* x,
                  __global int* hist, int n)
{
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local float tile[16];
    tile[lid] = x[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int k = 0; k < 8; k++) {
        acc = acc + tile[(lid + k) % 16] * 0.5f;
    }
    if (gid % 3 == 0) {
        acc = acc * 2.0f;
    } else {
        acc = acc - 1.0f;
    }
    atomic_add(&hist[gid % 4], 1);
    out[gid] = acc + x[(gid * 7) % n];
}
"""
N = 64


def _run(engine: str, options: str = "-O2"):
    device = cl.Device(TESLA_C2050, engine)
    rng = np.random.default_rng(11)
    x = rng.uniform(-2, 2, N).astype(np.float32)
    out = np.zeros(N, np.float32)
    hist = np.zeros(4, np.int32)
    event = run_cl_kernel(device, KERNEL, "mix",
                          [out, x, hist, np.int32(N)],
                          (N,), (16,), options=options)
    return out, hist, event.counters


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime):
    yield


class TestBitIdentity:
    @pytest.mark.parametrize("options", ["-cl-opt-disable", "-O1", "-O2"])
    def test_buffers_and_counters_match_vector(self, options):
        v_out, v_hist, v_c = _run("vector", options)
        j_out, j_hist, j_c = _run("jit", options)
        assert j_out.tobytes() == v_out.tobytes()
        assert j_hist.tobytes() == v_hist.tobytes()
        assert vars(j_c) == vars(v_c)

    def test_per_line_profiles_match_vector(self):
        was_enabled = prof.is_enabled()
        prof.enable()
        try:
            prof.reset()
            _run("vector")
            (v_profile,) = prof.get_profiler().drain()
            _run("jit")
            (j_profile,) = prof.get_profiler().drain()
        finally:
            if not was_enabled:
                prof.disable()
        v_lines = {ln: rec.to_dict() for ln, rec in v_profile.lines.items()}
        j_lines = {ln: rec.to_dict() for ln, rec in j_profile.lines.items()}
        assert j_lines == v_lines
        assert ({ln: b.to_dict() for ln, b in j_profile.branches.items()}
                == {ln: b.to_dict() for ln, b in v_profile.branches.items()})


class TestCodegenEngagement:
    def test_o2_run_uses_generated_code(self):
        """At -O2 the JIT must actually execute generated functions —
        the in-process source memo fills and the bytecode object holds
        compiled callables for the kernel."""
        jit_mod.clear_cache()
        device = cl.Device(TESLA_C2050, "jit")
        ctx = cl.Context([device])
        program = cl.Program(ctx, KERNEL).build("-O2")
        assert jit_mod._source_memo          # codegen ran at build time
        version, funcs = program.ir.bytecode._jit
        assert version == jit_mod.JIT_CODEGEN_VERSION
        assert callable(funcs["mix"])

    def test_prebuild_hook_compiles_at_build_time(self):
        """``Program.build`` on a jit device triggers codegen (the
        prebuild hook), so the first enqueue pays nothing."""
        jit_mod.clear_cache()
        device = cl.Device(TESLA_C2050, "jit")
        program = cl.Program(cl.Context([device]), KERNEL).build("-O2")
        assert getattr(program.ir.bytecode, "_jit", None) is not None

    def test_o0_falls_back_to_tree_interpreter(self):
        """-O0 programs carry no bytecode: the jit engine must still
        run them (inherited tree path) with vector-identical output."""
        v_out, _h, v_c = _run("vector", "-cl-opt-disable")
        j_out, _h, j_c = _run("jit", "-cl-opt-disable")
        assert j_out.tobytes() == v_out.tobytes()
        assert vars(j_c) == vars(v_c)

    def test_codegen_failure_falls_back_to_interpreter(self, monkeypatch):
        """Any codegen breakage degrades to the interpreter, never to a
        launch failure."""
        jit_mod.clear_cache()
        monkeypatch.setattr(jit_mod, "generate_module",
                            lambda pbc: (_ for _ in ()).throw(
                                RuntimeError("boom")))
        v_out, v_hist, v_c = _run("vector")
        j_out, j_hist, j_c = _run("jit")
        assert j_out.tobytes() == v_out.tobytes()
        assert vars(j_c) == vars(v_c)

    def test_engine_run_span_records_engine(self):
        from repro import trace
        tracer = trace.enable(fresh=True)
        try:
            _run("jit")
        finally:
            trace.disable()
        spans = [s for s in tracer.spans() if s.name == "engine_run"]
        assert spans and all(s.attrs["engine"] == "jit" for s in spans)


class TestSourceCache:
    def test_generated_source_cached_on_disk(self, tmp_path):
        """With the disk cache active, codegen writes a ``.jitsrc``
        sidecar; a fresh process-state (memo cleared) is served from
        disk without regenerating."""
        hpl.configure(cache_dir=tmp_path)
        try:
            _run("jit")
            sidecars = list(tmp_path.glob("*.jitsrc"))
            assert len(sidecars) == 1
            text = sidecars[0].read_text(encoding="utf-8")
            assert "def " in text and "FUNCS" in text

            reset_runtime()             # drops the in-process memo
            assert not jit_mod._source_memo
            calls = []
            orig = jit_mod.generate_module
            jit_mod.generate_module = \
                lambda pbc: calls.append(1) or orig(pbc)
            try:
                _run("jit")
            finally:
                jit_mod.generate_module = orig
            assert calls == []          # served from the .jitsrc sidecar
        finally:
            hpl.configure(cache_dir=None)

    def test_purge_sweeps_jitsrc_sidecars(self, tmp_path):
        cache = hpl.configure(cache_dir=tmp_path)
        try:
            _run("jit")
            assert list(tmp_path.glob("*.jitsrc"))
            cache.purge()
            assert not list(tmp_path.glob("*.jitsrc"))
            assert not list(tmp_path.glob("*.irbin"))
        finally:
            hpl.configure(cache_dir=None)

    def test_reset_runtime_clears_source_memo(self):
        _run("jit")
        assert jit_mod._source_memo
        reset_runtime()
        assert not jit_mod._source_memo
