"""Basic kernel execution on both engines."""

import numpy as np
import pytest

import repro.ocl as cl
from repro.errors import KernelLaunchError


class TestElementwise:
    def test_copy_kernel(self, any_engine_device, cl_run):
        src = """__kernel void copy(__global float* dst,
                                    __global const float* s) {
            int i = get_global_id(0);
            dst[i] = s[i];
        }"""
        a = np.random.rand(64).astype(np.float32)
        out = np.zeros(64, np.float32)
        cl_run(any_engine_device, src, "copy", [out, a], (64,))
        assert np.array_equal(out, a)

    def test_saxpy_double(self, any_engine_device, cl_run):
        src = """__kernel void saxpy(__global double* y,
                __global const double* x, double a) {
            int i = get_global_id(0);
            y[i] = a * x[i] + y[i];
        }"""
        x = np.random.rand(100)
        y = np.random.rand(100)
        y0 = y.copy()
        cl_run(any_engine_device, src, "saxpy", [y, x, 3.0], (100,))
        assert np.allclose(y, 3.0 * x + y0)

    def test_int_arithmetic(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = a[i] * 3 - 7;
        }"""
        a = np.arange(32, dtype=np.int32)
        o = np.zeros(32, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (32,))
        assert np.array_equal(o, a * 3 - 7)

    def test_scalar_arg_uint(self, any_engine_device, cl_run):
        src = """__kernel void f(__global uint* o, uint v) {
            o[get_global_id(0)] = v;
        }"""
        o = np.zeros(8, np.uint32)
        cl_run(any_engine_device, src, "f", [o, np.uint32(4000000000)],
               (8,))
        assert np.all(o == 4000000000)

    def test_2d_domain_ids(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            o[y * w + x] = x * 100 + y;
        }"""
        w, h = 8, 4
        o = np.zeros(w * h, np.int32)
        cl_run(any_engine_device, src, "f", [o, np.int32(w)], (w, h))
        expected = np.array([[x * 100 + y for x in range(w)]
                             for y in range(h)], np.int32).reshape(-1)
        assert np.array_equal(o, expected)

    def test_builtin_math(self, any_engine_device, cl_run):
        src = """__kernel void f(__global float* o,
                                 __global const float* a) {
            int i = get_global_id(0);
            o[i] = sqrt(a[i]) + exp(0.0f);
        }"""
        a = np.random.rand(16).astype(np.float32) + 0.1
        o = np.zeros(16, np.float32)
        cl_run(any_engine_device, src, "f", [o, a], (16,))
        assert np.allclose(o, np.sqrt(a) + 1.0, rtol=1e-5)

    def test_helper_function_call(self, any_engine_device, cl_run):
        src = """
        float square(float x) { return x * x; }
        __kernel void f(__global float* o, __global const float* a) {
            int i = get_global_id(0);
            o[i] = square(a[i]) + square(2.0f);
        }"""
        a = np.random.rand(16).astype(np.float32)
        o = np.zeros(16, np.float32)
        cl_run(any_engine_device, src, "f", [o, a], (16,))
        assert np.allclose(o, a * a + 4.0, rtol=1e-5)

    def test_helper_with_pointer_param(self, any_engine_device, cl_run):
        src = """
        void put(__global int* p, int i, int v) { p[i] = v; }
        __kernel void f(__global int* o) {
            int i = get_global_id(0);
            put(o, i, i * 2);
        }"""
        o = np.zeros(16, np.int32)
        cl_run(any_engine_device, src, "f", [o], (16,))
        assert np.array_equal(o, np.arange(16) * 2)

    def test_ternary_select(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = a[i] > 5 ? 1 : -1;
        }"""
        a = np.arange(12, dtype=np.int32)
        o = np.zeros(12, np.int32)
        cl_run(any_engine_device, src, "f", [o, a], (12,))
        assert np.array_equal(o, np.where(a > 5, 1, -1))


class TestLocalMemoryAndBarriers:
    DOT_SRC = """__kernel void dotp(__global const float* v1,
            __global const float* v2, __global float* p) {
        __local float s[8];
        int lid = get_local_id(0);
        int gid = get_global_id(0);
        s[lid] = v1[gid] * v2[gid];
        barrier(CLK_LOCAL_MEM_FENCE);
        if (lid == 0) {
            float sum = 0.0f;
            for (int i = 0; i < 8; i++) {
                sum += s[i];
            }
            p[get_group_id(0)] = sum;
        }
    }"""

    def test_group_dot_product(self, any_engine_device, cl_run):
        n = 64
        v1 = np.random.rand(n).astype(np.float32)
        v2 = np.random.rand(n).astype(np.float32)
        p = np.zeros(n // 8, np.float32)
        cl_run(any_engine_device, self.DOT_SRC, "dotp", [v1, v2, p],
               (n,), (8,))
        expected = (v1 * v2).reshape(-1, 8).sum(axis=1)
        assert np.allclose(p, expected, rtol=1e-5)

    def test_local_pointer_argument(self, any_engine_device, cl_run):
        src = """__kernel void f(__global float* o,
                __global const float* a, __local float* tmp) {
            int lid = get_local_id(0);
            int gid = get_global_id(0);
            tmp[lid] = a[gid];
            barrier(CLK_LOCAL_MEM_FENCE);
            o[gid] = tmp[(lid + 1) % 4];
        }"""
        a = np.arange(16, dtype=np.float32)
        o = np.zeros(16, np.float32)
        cl_run(any_engine_device, src, "f", [o, a, ("local", 16)],
               (16,), (4,))
        expected = a.reshape(-1, 4)[:, [1, 2, 3, 0]].reshape(-1)
        assert np.array_equal(o, expected)

    def test_local_memory_isolated_between_groups(self, any_engine_device,
                                                  cl_run):
        src = """__kernel void f(__global int* o) {
            __local int s[1];
            if (get_local_id(0) == 0) {
                s[0] = get_group_id(0);
            }
            barrier(CLK_LOCAL_MEM_FENCE);
            o[get_global_id(0)] = s[0];
        }"""
        o = np.zeros(12, np.int32)
        cl_run(any_engine_device, src, "f", [o], (12,), (4,))
        assert np.array_equal(o, np.repeat([0, 1, 2], 4))

    def test_local_memory_capacity_enforced(self, cl_run):
        small = cl.DeviceSpec(name="tiny", type=cl.device_type.GPU,
                              local_mem_bytes=64)
        device = cl.Device(small, "vector")
        src = """__kernel void f(__global float* o) {
            __local float s[64];
            s[get_local_id(0)] = 0.0f;
            o[get_global_id(0)] = s[0];
        }"""
        o = np.zeros(8, np.float32)
        from repro.errors import OutOfResources
        with pytest.raises(OutOfResources, match="local memory"):
            cl_run(device, src, "f", [o], (8,), (8,))


class TestAtomics:
    def test_atomic_add_histogram(self, any_engine_device, cl_run):
        src = """__kernel void hist(__global int* bins,
                                    __global const int* vals) {
            int i = get_global_id(0);
            atomic_add(&bins[vals[i]], 1);
        }"""
        vals = np.random.default_rng(3).integers(0, 4, 256) \
            .astype(np.int32)
        bins = np.zeros(4, np.int32)
        cl_run(any_engine_device, src, "hist", [bins, vals], (256,))
        assert np.array_equal(bins, np.bincount(vals, minlength=4))

    def test_atomic_inc(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* c) {
            atomic_inc(&c[0]);
        }"""
        c = np.zeros(1, np.int32)
        cl_run(any_engine_device, src, "f", [c], (100,))
        assert c[0] == 100

    def test_atomic_max(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* m,
                                 __global const int* vals) {
            atomic_max(&m[0], vals[get_global_id(0)]);
        }"""
        vals = np.random.default_rng(5).integers(0, 1000, 64) \
            .astype(np.int32)
        m = np.zeros(1, np.int32)
        cl_run(any_engine_device, src, "f", [m, vals], (64,))
        assert m[0] == vals.max()


class TestErrors:
    def test_out_of_bounds_trapped(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* a) {
            a[get_global_id(0) + 100] = 1;
        }"""
        a = np.zeros(8, np.int32)
        with pytest.raises(KernelLaunchError, match="out of bounds"):
            cl_run(any_engine_device, src, "f", [a], (8,))

    def test_negative_index_trapped(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* a) {
            a[get_global_id(0) - 5] = 1;
        }"""
        a = np.zeros(8, np.int32)
        with pytest.raises(KernelLaunchError, match="out of bounds"):
            cl_run(any_engine_device, src, "f", [a], (8,))

    def test_infinite_loop_guard_serial(self, tesla_serial, cl_run):
        # only exercised on tiny domains: the serial guard triggers per
        # work-item; keep the test cheap by patching the limit
        import repro.ocl.engines.serial as serial_mod
        old = serial_mod._MAX_LOOP_ITERATIONS
        serial_mod._MAX_LOOP_ITERATIONS = 1000
        try:
            src = """__kernel void f(__global int* a) {
                while (1) { a[0] = 1; }
            }"""
            a = np.zeros(1, np.int32)
            with pytest.raises(KernelLaunchError, match="iteration"):
                cl_run(tesla_serial, src, "f", [a], (1,))
        finally:
            serial_mod._MAX_LOOP_ITERATIONS = old

    def test_barrier_divergence_detected_serial(self, tesla_serial,
                                                cl_run):
        src = """__kernel void f(__global int* a) {
            if (get_local_id(0) == 0) {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            a[get_global_id(0)] = 1;
        }"""
        a = np.zeros(4, np.int32)
        with pytest.raises(KernelLaunchError, match="divergence"):
            cl_run(tesla_serial, src, "f", [a], (4,), (4,))
