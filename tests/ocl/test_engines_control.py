"""Divergent control flow on both engines."""

import numpy as np

_DT = np.int32


class TestIfDivergence:
    def test_half_lanes_take_branch(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            if (i % 2 == 0) {
                o[i] = 10;
            } else {
                o[i] = 20;
            }
        }"""
        o = np.zeros(16, _DT)
        cl_run(any_engine_device, src, "f", [o], (16,))
        assert np.array_equal(o, np.where(np.arange(16) % 2 == 0, 10, 20))

    def test_nested_if(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            if (i < 8) {
                if (i < 4) {
                    o[i] = 1;
                } else {
                    o[i] = 2;
                }
            } else {
                o[i] = 3;
            }
        }"""
        o = np.zeros(16, _DT)
        cl_run(any_engine_device, src, "f", [o], (16,))
        expected = np.where(np.arange(16) < 4, 1,
                            np.where(np.arange(16) < 8, 2, 3))
        assert np.array_equal(o, expected)

    def test_empty_else(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            o[i] = 5;
            if (i == 0) {
                o[i] = 9;
            }
        }"""
        o = np.zeros(8, _DT)
        cl_run(any_engine_device, src, "f", [o], (8,))
        assert o[0] == 9 and np.all(o[1:] == 5)


class TestLoops:
    def test_data_dependent_trip_counts(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int acc = 0;
            for (int j = 0; j < i; j++) {
                acc += j;
            }
            o[i] = acc;
        }"""
        o = np.zeros(12, _DT)
        cl_run(any_engine_device, src, "f", [o], (12,))
        expected = np.array([sum(range(i)) for i in range(12)], _DT)
        assert np.array_equal(o, expected)

    def test_while_with_update_inside(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int n = i + 1;
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) {
                    n = n / 2;
                } else {
                    n = 3 * n + 1;
                }
                steps++;
            }
            o[i] = steps;
        }"""
        o = np.zeros(16, _DT)
        cl_run(any_engine_device, src, "f", [o], (16,))

        def collatz(n):
            s = 0
            while n != 1:
                n = n // 2 if n % 2 == 0 else 3 * n + 1
                s += 1
            return s
        assert np.array_equal(o, [collatz(i + 1) for i in range(16)])

    def test_break_statement(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int acc = 0;
            for (int j = 0; j < 100; j++) {
                if (j == i) {
                    break;
                }
                acc += 1;
            }
            o[i] = acc;
        }"""
        o = np.zeros(10, _DT)
        cl_run(any_engine_device, src, "f", [o], (10,))
        assert np.array_equal(o, np.arange(10))

    def test_continue_statement(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int acc = 0;
            for (int j = 0; j < 10; j++) {
                if (j % 2 == 1) {
                    continue;
                }
                acc += j;
            }
            o[i] = acc;
        }"""
        o = np.zeros(4, _DT)
        cl_run(any_engine_device, src, "f", [o], (4,))
        assert np.all(o == sum(j for j in range(10) if j % 2 == 0))

    def test_continue_still_runs_for_update(self, any_engine_device,
                                            cl_run):
        # a for-loop continue must execute the update clause or loop
        # forever; this is the classic desugaring bug
        src = """__kernel void f(__global int* o) {
            int count = 0;
            for (int j = 0; j < 5; j++) {
                if (j == 2) {
                    continue;
                }
                count++;
            }
            o[get_global_id(0)] = count;
        }"""
        o = np.zeros(2, _DT)
        cl_run(any_engine_device, src, "f", [o], (2,))
        assert np.all(o == 4)

    def test_do_while_runs_at_least_once(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int n = 0;
            do {
                n++;
            } while (n < i);
            o[i] = n;
        }"""
        o = np.zeros(6, _DT)
        cl_run(any_engine_device, src, "f", [o], (6,))
        assert np.array_equal(o, [1, 1, 2, 3, 4, 5])

    def test_nested_loops_with_break(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int acc = 0;
            for (int a = 0; a < 4; a++) {
                for (int b = 0; b < 4; b++) {
                    if (b > a) {
                        break;
                    }
                    acc++;
                }
            }
            o[i] = acc;
        }"""
        o = np.zeros(3, _DT)
        cl_run(any_engine_device, src, "f", [o], (3,))
        assert np.all(o == 1 + 2 + 3 + 4)

    def test_early_return(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            o[i] = 1;
            if (i < 4) {
                return;
            }
            o[i] = 2;
        }"""
        o = np.zeros(8, _DT)
        cl_run(any_engine_device, src, "f", [o], (8,))
        assert np.array_equal(o, [1, 1, 1, 1, 2, 2, 2, 2])

    def test_return_inside_loop(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            for (int j = 0; j < 10; j++) {
                if (j == i) {
                    o[i] = j * 100;
                    return;
                }
            }
            o[i] = -1;
        }"""
        o = np.zeros(12, _DT)
        cl_run(any_engine_device, src, "f", [o], (12,))
        expected = [i * 100 if i < 10 else -1 for i in range(12)]
        assert np.array_equal(o, expected)

    def test_helper_with_return_paths(self, any_engine_device, cl_run):
        src = """
        int pick(int x) {
            if (x > 5) {
                return 100;
            }
            return x;
        }
        __kernel void f(__global int* o) {
            int i = get_global_id(0);
            o[i] = pick(i);
        }"""
        o = np.zeros(10, _DT)
        cl_run(any_engine_device, src, "f", [o], (10,))
        assert np.array_equal(o, [0, 1, 2, 3, 4, 5, 100, 100, 100, 100])

    def test_logical_and_short_circuit_effects(self, any_engine_device,
                                               cl_run):
        # both engines must agree on && even though the vector engine
        # evaluates both sides (expressions are side-effect free)
        src = """__kernel void f(__global int* o, __global const int* a) {
            int i = get_global_id(0);
            o[i] = (i > 2 && a[i] > 0) ? 1 : 0;
        }"""
        a = np.array([1, -1, 1, -1, 1, -1], np.int32)
        o = np.zeros(6, _DT)
        cl_run(any_engine_device, src, "f", [o, a], (6,))
        assert np.array_equal(o, [0, 0, 0, 0, 1, 0])

    def test_private_array_per_item(self, any_engine_device, cl_run):
        src = """__kernel void f(__global int* o) {
            int i = get_global_id(0);
            int q[4];
            for (int j = 0; j < 4; j++) {
                q[j] = i * 10 + j;
            }
            o[i] = q[i % 4];
        }"""
        o = np.zeros(8, _DT)
        cl_run(any_engine_device, src, "f", [o], (8,))
        assert np.array_equal(o, [i * 10 + i % 4 for i in range(8)])
