"""SimCL host object-model tests (platform/context/buffer/program/...)."""

import numpy as np
import pytest

import repro.ocl as cl
from repro.errors import (BuildProgramFailure, InvalidKernelArgs,
                          InvalidValue, InvalidWorkGroupSize,
                          OutOfResources, ProfilingInfoNotAvailable)


@pytest.fixture()
def ctx():
    device = cl.Device(cl.TESLA_C2050)
    return cl.Context([device])


class TestPlatformAndDevices:
    def test_single_platform(self):
        platforms = cl.get_platforms()
        assert len(platforms) == 1
        assert platforms[0].name == "SimCL"

    def test_default_roster_matches_paper_machine(self):
        devices = cl.get_platforms()[0].get_devices()
        names = [d.name for d in devices]
        assert any("Tesla" in n for n in names)
        assert any("Quadro" in n for n in names)
        assert any("Xeon" in n for n in names)

    def test_gpu_filter(self):
        gpus = cl.get_platforms()[0].get_devices(cl.device_type.GPU)
        assert gpus and all(d.is_gpu for d in gpus)

    def test_cpu_filter(self):
        cpus = cl.get_platforms()[0].get_devices(cl.device_type.CPU)
        assert len(cpus) == 1 and cpus[0].is_cpu

    def test_device_info_surface(self):
        tesla = cl.Device(cl.TESLA_C2050)
        assert tesla.max_compute_units == 448
        assert tesla.max_clock_frequency == 1150
        assert tesla.global_mem_size == 6 * (1 << 30)
        assert tesla.supports_fp64
        assert "cl_khr_fp64" in tesla.extensions

    def test_quadro_lacks_fp64(self):
        quadro = cl.Device(cl.QUADRO_FX380)
        assert not quadro.supports_fp64
        assert "cl_khr_fp64" not in quadro.extensions

    def test_platform_roster_override(self):
        cl.set_platform_devices([cl.XEON_HOST])
        try:
            devices = cl.get_platforms()[0].get_devices()
            assert len(devices) == 1 and devices[0].is_cpu
        finally:
            cl.reset_platform_devices()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            cl.Device(cl.TESLA_C2050, "quantum")


class TestContext:
    def test_requires_devices(self):
        with pytest.raises(InvalidValue):
            cl.Context([])

    def test_rejects_non_devices(self):
        from repro.errors import InvalidDevice
        with pytest.raises(InvalidDevice):
            cl.Context(["not a device"])

    def test_single_device_shorthand(self):
        device = cl.Device(cl.TESLA_C2050)
        assert cl.Context(device).devices == (device,)


class TestBuffer:
    def test_sized_allocation(self, ctx):
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1024)
        assert buf.size == 1024

    def test_copy_host_ptr(self, ctx):
        data = np.arange(10, dtype=np.float32)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_ONLY
                        | cl.mem_flags.COPY_HOST_PTR, hostbuf=data)
        assert np.array_equal(buf.view(np.float32), data)

    def test_copy_host_ptr_is_a_copy(self, ctx):
        data = np.arange(4, dtype=np.int32)
        buf = cl.Buffer(ctx, cl.mem_flags.COPY_HOST_PTR, hostbuf=data)
        data[0] = 99
        assert buf.view(np.int32)[0] == 0

    def test_use_host_ptr_aliases(self, ctx):
        data = np.arange(4, dtype=np.int32)
        buf = cl.Buffer(ctx, cl.mem_flags.USE_HOST_PTR, hostbuf=data)
        buf.view(np.int32)[0] = 7
        assert data[0] == 7

    def test_zero_size_rejected(self, ctx):
        with pytest.raises(InvalidValue):
            cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=0)

    def test_oversized_rejected(self, ctx):
        with pytest.raises(OutOfResources):
            cl.Buffer(ctx, cl.mem_flags.READ_WRITE,
                      size=100 * (1 << 30))

    def test_size_mismatch_with_hostbuf(self, ctx):
        with pytest.raises(InvalidValue):
            cl.Buffer(ctx, cl.mem_flags.COPY_HOST_PTR, size=1,
                      hostbuf=np.zeros(10))

    def test_read_write_roundtrip(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=40)
        data = np.arange(10, dtype=np.float32)
        queue.enqueue_write_buffer(buf, data)
        out = np.zeros(10, dtype=np.float32)
        queue.enqueue_read_buffer(buf, out)
        assert np.array_equal(out, data)

    def test_copy_buffer(self, ctx):
        queue = cl.CommandQueue(ctx)
        a = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        b = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        queue.enqueue_write_buffer(a, np.arange(4, dtype=np.int32))
        queue.enqueue_copy_buffer(a, b)
        assert np.array_equal(b.view(np.int32), np.arange(4))

    def test_local_memory_positive(self):
        with pytest.raises(InvalidValue):
            cl.LocalMemory(0)


class TestProgramAndKernel:
    GOOD = "__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }"

    def test_build_and_kernel_names(self, ctx):
        program = cl.Program(ctx, self.GOOD).build()
        assert program.kernel_names == ["k"]

    def test_build_failure_has_log(self, ctx):
        program = cl.Program(ctx, "__kernel void k( {")
        with pytest.raises(BuildProgramFailure):
            program.build()
        assert program.build_log

    def test_fp64_rejected_on_quadro(self):
        quadro_ctx = cl.Context([cl.Device(cl.QUADRO_FX380)])
        src = ("__kernel void k(__global double* a) "
               "{ a[0] = 1.0; }")
        with pytest.raises(BuildProgramFailure, match="double"):
            cl.Program(quadro_ctx, src).build()

    def test_unbuilt_program_refuses_kernels(self, ctx):
        with pytest.raises(InvalidValue, match="build"):
            cl.Program(ctx, self.GOOD).create_kernel("k")

    def test_unknown_kernel_name(self, ctx):
        program = cl.Program(ctx, self.GOOD).build()
        with pytest.raises(InvalidValue, match="no kernel"):
            program.create_kernel("nope")

    def test_build_options_reach_preprocessor(self, ctx):
        src = "__kernel void k(__global int* a) { a[0] = VALUE; }"
        program = cl.Program(ctx, src).build("-DVALUE=42")
        queue = cl.CommandQueue(ctx)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=4)
        kernel = program.create_kernel("k").set_args(buf)
        queue.enqueue_nd_range_kernel(kernel, (1,))
        assert buf.view(np.int32)[0] == 42

    def test_set_arg_type_checking(self, ctx):
        program = cl.Program(ctx, self.GOOD).build()
        kernel = program.create_kernel("k")
        with pytest.raises(InvalidKernelArgs):
            kernel.set_arg(0, 3)          # scalar for a buffer param
        with pytest.raises(InvalidValue):
            kernel.set_arg(5, 3)          # out of range

    def test_unbound_args_detected(self, ctx):
        program = cl.Program(ctx, self.GOOD).build()
        kernel = program.create_kernel("k")
        queue = cl.CommandQueue(ctx)
        with pytest.raises(InvalidKernelArgs, match="unbound"):
            queue.enqueue_nd_range_kernel(kernel, (4,))

    def test_buffer_dtype_mismatch(self, ctx):
        src = "__kernel void k(__global float* a) { a[0] = 1.0f; }"
        program = cl.Program(ctx, src).build()
        kernel = program.create_kernel("k")
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=6)  # not /4
        with pytest.raises(Exception):
            kernel.set_arg(0, buf)


class TestQueueAndEvents:
    def test_bad_local_size_rejected(self, ctx):
        program = cl.Program(ctx, TestProgramAndKernel.GOOD).build()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=400)
        kernel = program.create_kernel("k").set_args(buf)
        queue = cl.CommandQueue(ctx)
        with pytest.raises(InvalidWorkGroupSize):
            queue.enqueue_nd_range_kernel(kernel, (100,), (7,))

    def test_simulated_clock_advances(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 20)
        before = queue.clock
        queue.enqueue_write_buffer(buf, np.zeros(1 << 18,
                                                 dtype=np.float32))
        assert queue.clock > before

    def test_events_are_ordered(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=4096)
        e1 = queue.enqueue_write_buffer(buf, np.zeros(1024,
                                                      dtype=np.float32))
        e2 = queue.enqueue_write_buffer(buf, np.zeros(1024,
                                                      dtype=np.float32))
        assert e2.start_ns >= e1.end_ns

    def test_profiling_disabled(self, ctx):
        queue = cl.CommandQueue(ctx, profiling=False)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=4)
        event = queue.enqueue_write_buffer(buf, np.zeros(1, np.float32))
        with pytest.raises(ProfilingInfoNotAvailable):
            _ = event.profile_start

    def test_kernel_event_carries_counters(self, ctx):
        program = cl.Program(ctx, TestProgramAndKernel.GOOD).build()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=400)
        kernel = program.create_kernel("k").set_args(buf)
        queue = cl.CommandQueue(ctx)
        event = queue.enqueue_nd_range_kernel(kernel, (100,))
        assert event.counters.global_stores == 100
        # duration is quantised to whole simulated nanoseconds
        assert event.breakdown.total == pytest.approx(event.duration,
                                                      abs=2e-9)

    def test_queue_device_must_be_in_context(self):
        d1 = cl.Device(cl.TESLA_C2050)
        d2 = cl.Device(cl.QUADRO_FX380)
        ctx = cl.Context([d1])
        with pytest.raises(InvalidValue):
            cl.CommandQueue(ctx, d2)
