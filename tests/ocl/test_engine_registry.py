"""The pluggable execution-backend registry and engine selection."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.hpl as hpl
import repro.ocl as cl
from repro.ocl import TESLA_C2050
from repro.ocl.engines.base import (_REGISTRY, available_engines,
                                    default_engine, get_engine_class,
                                    register_engine, set_default_engine)
from repro.ocl.engines.vector import VectorEngine
from tests.conftest import run_cl_kernel

BUILTIN_ENGINES = ("serial", "vector", "jit")


@pytest.fixture(autouse=True)
def _clean_default():
    """Every test leaves the process-wide default engine untouched."""
    set_default_engine(None)
    yield
    set_default_engine(None)


class TestRegistry:
    def test_builtins_are_registered(self):
        for name in BUILTIN_ENGINES:
            assert name in available_engines()
            assert get_engine_class(name).name == name

    def test_capability_flags(self):
        assert "simt" not in get_engine_class("serial").capabilities
        assert "simt" in get_engine_class("vector").capabilities
        jit = get_engine_class("jit")
        assert {"bytecode", "simt", "codegen"} <= jit.capabilities
        assert jit.codegen_version >= 1
        # interpreters emit no generated code, so their artifacts can
        # never be invalidated by a codegen bump
        assert get_engine_class("vector").codegen_version == 0

    def test_unknown_engine_error_lists_backends(self):
        with pytest.raises(ValueError) as exc:
            get_engine_class("warpspeed")
        msg = str(exc.value)
        assert "warpspeed" in msg
        for name in BUILTIN_ENGINES:
            assert name in msg

    def test_device_rejects_unknown_engine_eagerly(self):
        with pytest.raises(ValueError, match="registered backends"):
            cl.Device(TESLA_C2050, "warpspeed")

    def test_register_engine_validates_shape(self):
        with pytest.raises(ValueError, match="name"):
            register_engine(type("Nameless", (), {}))
        with pytest.raises(ValueError, match="run"):
            register_engine(type("NoRun", (), {"name": "norun"}))

    def test_custom_engine_registers_and_runs(self):
        calls = []

        @register_engine
        class CountingEngine(VectorEngine):
            name = "counting-test"

            def run(self, *args, **kwargs):
                calls.append(args[0])
                return super().run(*args, **kwargs)

        try:
            device = cl.Device(TESLA_C2050, "counting-test")
            y = np.zeros(8, np.int32)
            run_cl_kernel(device, "__kernel void k(__global int* y) "
                                  "{ y[get_global_id(0)] = 7; }",
                          "k", [y], (8,))
            assert calls == ["k"]
            assert (y == 7).all()
        finally:
            del _REGISTRY["counting-test"]


class TestSelectionPrecedence:
    def test_default_is_vector(self):
        assert default_engine() == "vector"
        assert cl.Device(TESLA_C2050).engine_name == "vector"

    def test_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv("HPL_ENGINE", "serial")
        assert default_engine() == "serial"
        assert cl.Device(TESLA_C2050).engine_name == "serial"
        monkeypatch.setenv("HPL_ENGINE", "warpspeed")
        with pytest.raises(ValueError, match="registered backends"):
            default_engine()

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("HPL_ENGINE", "serial")
        hpl.configure(engine="jit")
        assert default_engine() == "jit"
        hpl.configure(engine=None)      # back to the env override
        assert default_engine() == "serial"

    def test_configure_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="registered backends"):
            hpl.configure(engine="warpspeed")

    def test_spec_engine_beats_default(self):
        spec = dataclasses.replace(TESLA_C2050, engine="serial")
        assert cl.Device(spec).engine_name == "serial"
        # explicit Device(engine=) still wins over the spec
        assert cl.Device(spec, "jit").engine_name == "jit"

    def test_unset_device_tracks_default_dynamically(self):
        device = cl.Device(TESLA_C2050)
        set_default_engine("jit")
        assert device.engine_name == "jit"
        set_default_engine(None)
        assert device.engine_name == "vector"
