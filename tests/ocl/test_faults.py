"""Fault injection: plan grammar, determinism, event error statuses."""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from repro.errors import DeviceLost, DeviceNotAvailable, FaultPlanError, \
    OutOfResources
from repro.ocl import TESLA_C2050, XEON_HOST, command_status
from repro.ocl.faults import FaultPlan, active_plan, configure, op_name

SRC = """
__kernel void twice(__global float* a) {
    int i = get_global_id(0);
    a[i] = 2.0f * a[i];
}
"""


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    configure(None)
    yield
    configure(None)


def _setup(deferred=False):
    device = cl.Device(TESLA_C2050, "serial")
    ctx = cl.Context([device])
    queue = cl.CommandQueue(ctx, device, deferred=deferred)
    return device, ctx, queue


class TestGrammar:
    def test_parse_full_clause(self):
        plan = FaultPlan.parse(
            "device=Tesla kind=transient op=kernel nth=2 count=3 "
            "code=lost; device=* kind=slow factor=4; seed=9")
        assert len(plan.specs) == 2
        t, s = plan.specs
        assert (t.device, t.kind, t.op, t.nth, t.count, t.code) \
            == ("Tesla", "transient", "kernel", 2, 3, "lost")
        assert (s.kind, s.factor) == ("slow", 4.0)
        assert plan.seed == 9

    def test_empty_plan_means_no_faults(self):
        plan = FaultPlan.parse("")
        assert list(plan.specs) == []
        assert plan.draw("anything", "kernel", 0.0) is None

    @pytest.mark.parametrize("text", [
        "device=X",                             # no kind
        "kind=lost",                            # no device
        "device=X kind=wat",                    # unknown kind
        "device=X kind=transient op=warp",      # unknown op
        "device=X kind=transient nth=0",        # nth is 1-based
        "device=X kind=transient nth=1 prob=0.5",   # nth xor prob
        "device=X kind=transient prob=1.5",     # prob out of range
        "device=X kind=transient nth=1 count=0",
        "device=X kind=slow factor=0.5",        # slowdowns only
        "device=X kind=lost at=banana",         # bad number
        "device=X kind=lost lost",              # bare token
        "device=X kind=lost device=Y",          # duplicate key
        "device=X kind=lost nonsense=1",        # unknown key
    ])
    def test_bad_clause_raises(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_device_matching_is_substring_case_insensitive(self):
        spec = FaultPlan.parse("device=380#1 kind=lost").specs[0]
        assert spec.matches_device("SimCL Quadro FX 380#1")
        assert not spec.matches_device("SimCL Quadro FX 380#2")
        star = FaultPlan.parse("device=* kind=lost").specs[0]
        assert star.matches_device("anything at all")

    def test_op_name_mapping(self):
        from repro.ocl.api import command_type

        assert op_name(command_type.NDRANGE_KERNEL) == "kernel"
        assert op_name(command_type.READ_BUFFER) == "read"
        assert op_name(command_type.MARKER) == "marker"


class TestDeterminism:
    def test_nth_and_count_select_exact_victims(self):
        plan = FaultPlan.parse(
            "device=* kind=transient op=kernel nth=2 count=2")
        outcomes = [plan.draw("dev#0", "kernel", 0.0) is not None
                    for _ in range(5)]
        assert outcomes == [False, True, True, False, False]

    def test_reset_restores_the_schedule(self):
        plan = FaultPlan.parse("device=* kind=transient op=read nth=1")
        assert plan.draw("d#0", "read", 0.0) is not None
        assert plan.draw("d#0", "read", 0.0) is None
        plan.reset()
        assert plan.draw("d#0", "read", 0.0) is not None

    def test_prob_draws_are_seed_deterministic(self):
        def draws(seed):
            plan = FaultPlan.parse(
                f"device=* kind=transient prob=0.5; seed={seed}")
            return [plan.draw("d#0", "kernel", 0.0) is not None
                    for _ in range(32)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)     # astronomically unlikely to tie

    def test_lost_onset_respects_simulated_time(self):
        plan = FaultPlan.parse("device=* kind=lost at=1.0")
        assert plan.draw("d#0", "kernel", 0.5) is None
        hit = plan.draw("d#0", "kernel", 1.5)
        assert hit is not None and isinstance(hit.error, DeviceLost)
        # once lost, always lost — even for earlier timestamps
        assert plan.draw("d#0", "kernel", 0.0) is not None
        assert plan.is_lost("d#0")

    def test_slow_factor_multiplies_matching_ops(self):
        plan = FaultPlan.parse("device=quadro kind=slow factor=4; "
                               "device=quadro kind=slow factor=2 op=read")
        assert plan.slow_factor("Quadro#1", "kernel") == 4.0
        assert plan.slow_factor("Quadro#1", "read") == 8.0
        assert plan.slow_factor("Tesla#0", "read") == 1.0


class TestQueueInjection:
    def test_transient_failure_sets_status_and_raises_on_wait(self):
        configure("device=* kind=transient op=write nth=1")
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        ev = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        assert ev.status is command_status.OUT_OF_RESOURCES
        assert ev.is_failed and not ev.is_complete
        assert isinstance(ev.error, OutOfResources)
        with pytest.raises(OutOfResources):
            ev.wait()
        # the very next attempt succeeds: the hiccup was transient
        ev2 = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        assert ev2.is_complete

    def test_lost_device_fails_every_command(self):
        configure("device=* kind=lost at=0")
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        for _ in range(3):
            ev = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
            assert ev.status is command_status.DEVICE_NOT_AVAILABLE
            with pytest.raises(DeviceNotAvailable):
                ev.wait()

    def test_failed_dependency_skips_payload(self):
        configure("device=* kind=transient op=write nth=1")
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        w = queue.enqueue_write_buffer(buf, np.full(4, 7.0, np.float32))
        out = np.full(4, -1.0, np.float32)
        r = queue.enqueue_read_buffer(buf, out, wait_for=[w])
        r.drive()
        assert w.is_failed and r.is_failed
        # the read never ran: host memory is untouched
        assert np.array_equal(out, np.full(4, -1.0, np.float32))

    def test_callbacks_fire_with_failed_status(self):
        configure("device=* kind=transient op=write nth=1")
        _dev, ctx, queue = _setup(deferred=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        ev = queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        seen = []
        ev.add_callback(seen.append)
        ev.drive()
        assert seen == [ev]
        # late registration on a terminal event fires immediately
        late = []
        ev.add_callback(late.append)
        assert late == [ev]

    def test_straggler_multiplies_duration_only(self):
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=1 << 16)
        data = np.ones(1 << 14, np.float32)
        base = queue.enqueue_write_buffer(buf, data).duration
        configure("device=* kind=slow factor=8")
        slow = queue.enqueue_write_buffer(buf, data).duration
        # durations are stamped in integer nanoseconds, hence the slack
        assert slow == pytest.approx(8 * base, abs=8e-9)

    def test_injection_is_observable_in_trace(self):
        from repro import trace

        configure("device=* kind=transient op=write nth=1")
        before = trace.get_registry().counter(
            "simcl.faults_injected").value
        _dev, ctx, queue = _setup()
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=16)
        queue.enqueue_write_buffer(buf, np.ones(4, np.float32))
        after = trace.get_registry().counter(
            "simcl.faults_injected").value
        assert after == before + 1


class TestBuildInjection:
    def test_transient_build_failure_then_success(self):
        configure("device=* kind=transient op=build nth=1 code=lost")
        device = cl.Device(XEON_HOST, "serial")
        ctx = cl.Context([device])
        program = cl.Program(ctx, SRC)
        with pytest.raises(DeviceLost):
            program.build()
        assert not program.built_for(device)
        assert "fault injected" in program.build_logs[device.name]
        program.build()                 # the retry goes through
        assert program.built_for(device)


class TestActivation:
    def test_env_var_installs_plan(self, monkeypatch):
        from repro.ocl import faults

        monkeypatch.setenv(faults.ENV_VAR, "device=* kind=lost at=0")
        faults._reset_for_tests()
        try:
            plan = active_plan()
            assert plan is not None and plan.specs[0].kind == "lost"
        finally:
            faults._reset_for_tests()

    def test_configure_accepts_plan_string_and_none(self):
        configure("device=* kind=slow factor=2")
        assert active_plan().specs[0].factor == 2.0
        plan = FaultPlan.parse("device=* kind=lost")
        configure(plan)
        assert active_plan() is plan
        configure(None)
        assert active_plan() is None

    def test_configure_rejects_garbage(self):
        with pytest.raises(FaultPlanError):
            configure("device=* kind=transient nth=one")
