"""Launch-validation regressions: default local sizes, per-device build
state, and ``__constant`` argument checking."""

import numpy as np
import pytest

import repro.ocl as cl
from repro.clc import compile_source
from repro.ocl import QUADRO_FX380, TESLA_C2050
from repro.ocl.engines.base import BufferBinding, NDRange, check_args
from repro.errors import (BuildProgramFailure, InvalidDevice,
                          InvalidKernelArgs, InvalidProgramExecutable,
                          InvalidValue, InvalidWorkGroupSize,
                          OutOfResources)

COPY_SRC = """
__kernel void copy(__global float* dst, __global const float* src) {
    int i = get_global_id(0);
    dst[i] = src[i];
}
"""


# -- NDRange default local size vs per-dimension caps -------------------------

class TestDefaultLocalSize:
    def test_default_respects_per_dimension_cap(self):
        # regression: the auto-picked local size used to consider only
        # max_work_group_size, choose 256, and then reject itself on a
        # device whose per-dimension cap is lower
        nd = NDRange((256,), max_work_group_size=1024,
                     max_work_item_sizes=(64, 64, 64))
        assert nd.local_size == (64,)

    def test_default_2d_respects_caps(self):
        nd = NDRange((128, 128), max_work_group_size=1024,
                     max_work_item_sizes=(8, 4, 1))
        assert nd.local_size[0] <= 8 and nd.local_size[1] <= 4
        assert all(g % l == 0
                   for g, l in zip(nd.global_size, nd.local_size))

    def test_default_unconstrained_unchanged(self):
        # the historical behaviour without per-dim caps is preserved
        nd = NDRange((1024,), max_work_group_size=1024)
        assert nd.local_size == (256,)

    def test_explicit_local_still_validated_against_caps(self):
        with pytest.raises(InvalidWorkGroupSize):
            NDRange((256,), (128,), max_work_group_size=1024,
                    max_work_item_sizes=(64, 64, 64))

    def test_device_capped_launch_runs(self, cl_run):
        # end-to-end: a device whose per-dim cap is below 256 can run a
        # default-local launch (this raised InvalidWorkGroupSize before)
        from dataclasses import replace

        spec = replace(TESLA_C2050, max_work_item_sizes=(64, 64, 64))
        device = cl.Device(spec, "vector")
        dst = np.zeros(256, dtype=np.float32)
        src = np.arange(256, dtype=np.float32)
        cl_run(device, COPY_SRC, "copy", [dst, src], (256,))
        np.testing.assert_array_equal(dst, src)


# -- per-device build state ---------------------------------------------------

FP64_SRC = """
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void dscale(__global double* y, double a) {
    int i = get_global_id(0);
    y[i] = y[i] * a;
}
"""


@pytest.fixture()
def two_gpus():
    tesla = cl.Device(TESLA_C2050, "vector")
    quadro = cl.Device(QUADRO_FX380, "vector")
    return cl.Context([tesla, quadro]), tesla, quadro


class TestPerDeviceBuild:
    def test_subset_build_tracks_devices(self, two_gpus):
        ctx, tesla, quadro = two_gpus
        program = cl.Program(ctx, FP64_SRC).build(devices=[tesla])
        assert program.built_for(tesla)
        assert not program.built_for(quadro)
        assert program.built_devices == [tesla]
        assert program.build_logs[tesla.name] == "build succeeded"
        assert quadro.name not in program.build_logs

    def test_enqueue_on_unbuilt_device_raises(self, two_gpus):
        # regression: this used to launch (and crash in the engine or
        # silently mis-run fp64 work on a non-fp64 device) instead of
        # raising the CL_INVALID_PROGRAM_EXECUTABLE mirror
        ctx, tesla, quadro = two_gpus
        program = cl.Program(ctx, FP64_SRC).build(devices=[tesla])
        kernel = program.create_kernel("dscale")
        y = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=8 * 16)
        kernel.set_arg(0, y)
        kernel.set_arg(1, np.float64(2.0))
        queue = cl.CommandQueue(ctx, quadro)
        with pytest.raises(InvalidProgramExecutable) as exc:
            queue.enqueue_nd_range_kernel(kernel, (16,))
        assert "CL_INVALID_PROGRAM_EXECUTABLE" in str(exc.value)
        # the built device still works
        cl.CommandQueue(ctx, tesla).enqueue_nd_range_kernel(kernel, (16,))

    def test_failed_subset_build_keeps_other_device_built(self, two_gpus):
        ctx, tesla, quadro = two_gpus
        program = cl.Program(ctx, FP64_SRC).build(devices=[tesla])
        with pytest.raises(BuildProgramFailure, match="cl_khr_fp64"):
            program.build(devices=[quadro])
        assert program.built_for(tesla)          # unaffected
        assert not program.built_for(quadro)
        assert "cl_khr_fp64" in program.build_logs[quadro.name]
        assert program.build_logs[tesla.name] == "build succeeded"

    def test_failed_rebuild_resets_built_state(self, two_gpus):
        # regression: a failed rebuild used to leave the stale previous
        # executable behind a "built" flag
        ctx, tesla, _quadro = two_gpus
        source = """
        __kernel void k(__global float* y) {
        #ifdef GOOD
            y[get_global_id(0)] = 1.0f;
        #else
            y[get_global_id(0)] = no_such_symbol;
        #endif
        }
        """
        program = cl.Program(ctx, source).build("-DGOOD", devices=[tesla])
        assert program.built_for(tesla)
        with pytest.raises(BuildProgramFailure):
            program.build("", devices=[tesla])
        assert program.ir is None
        assert not program.built_for(tesla)
        assert program.built_devices == []
        with pytest.raises(InvalidValue, match="not built"):
            program.create_kernel("k")
        assert "no_such_symbol" in program.build_logs[tesla.name]

    def test_build_rejects_foreign_device(self, two_gpus):
        ctx, tesla, _quadro = two_gpus
        other = cl.Device(TESLA_C2050, "vector")   # not in this context
        with pytest.raises(InvalidDevice):
            cl.Program(ctx, COPY_SRC).build(devices=[other])


# -- __constant argument validation -------------------------------------------

CONST_SRC = """
__kernel void gather(__global float* dst, __constant float* table) {
    int i = get_global_id(0);
    dst[i] = table[i % 16];
}
"""


class TestConstantArgs:
    def test_small_constant_buffer_runs(self, cl_run, tesla_vector):
        dst = np.zeros(64, dtype=np.float32)
        table = np.arange(16, dtype=np.float32)
        cl_run(tesla_vector, CONST_SRC, "gather", [dst, table], (64,))
        np.testing.assert_array_equal(dst, np.tile(table, 4))

    def test_oversized_constant_buffer_rejected(self, tesla_vector):
        # regression: the device's CL_DEVICE_MAX_CONSTANT_BUFFER_SIZE
        # (64 KB) was not enforced at launch
        ctx = cl.Context([tesla_vector])
        queue = cl.CommandQueue(ctx, tesla_vector)
        program = cl.Program(ctx, CONST_SRC).build()
        kernel = program.create_kernel("gather")
        too_big = tesla_vector.max_constant_buffer_size + 4
        dst = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64 * 4)
        table = cl.Buffer(ctx, cl.mem_flags.READ_ONLY, size=too_big)
        kernel.set_arg(0, dst)
        kernel.set_arg(1, table)
        with pytest.raises(OutOfResources, match="constant"):
            queue.enqueue_nd_range_kernel(kernel, (64,))

    def test_wrong_address_space_binding_rejected(self):
        # regression: check_args ignored BufferBinding.space entirely
        ir = compile_source(CONST_SRC)
        fn = ir.kernels["gather"]
        dst = BufferBinding(np.zeros(64, dtype=np.float32), "global")
        table = BufferBinding(np.zeros(16, dtype=np.float32), "global")
        with pytest.raises(InvalidKernelArgs, match="__constant"):
            check_args(fn, [dst, table])

    def test_spec_aware_check_accepts_fitting_buffer(self):
        ir = compile_source(CONST_SRC)
        fn = ir.kernels["gather"]
        dst = BufferBinding(np.zeros(64, dtype=np.float32), "global")
        table = BufferBinding(np.zeros(16, dtype=np.float32), "constant")
        check_args(fn, [dst, table], TESLA_C2050)   # must not raise
