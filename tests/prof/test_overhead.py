"""Profiling-off must stay near-free (acceptance: <5% on benchsuite).

A wall-clock benchsuite comparison is too noisy for CI, so — like
``tests/trace/test_overhead.py`` — this pins the *mechanism*: a
disabled profiler hands the engines ``None`` instead of a collector, so
every per-instruction site reduces to one ``col is not None`` check on
a local, and the per-launch entry reduces to one attribute read.  Both
are bounded here at amortized sub-microsecond cost, orders of magnitude
below the interpreter work per counted instruction.
"""

from __future__ import annotations

import time

from repro import prof


class TestDisabledFastPath:
    def test_begin_launch_returns_none(self):
        prof.disable()
        assert prof.begin_launch("k", "vector", None, "", 64, 1) is None
        assert len(prof.get_profiler()) == 0

    def test_finish_launch_of_none_is_noop(self):
        prof.disable()
        assert prof.finish_launch(None, object()) is None
        assert len(prof.get_profiler()) == 0

    def test_disabled_begin_cost_is_sub_microsecond_amortized(self):
        prof.disable()
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            prof.begin_launch("k", "vector", None, "", 64, 1)
        elapsed = time.perf_counter() - t0
        # generous CI bound: 10us/call would still pass; typical ~0.3us
        assert elapsed < n * 10e-6, (
            f"disabled begin_launch costs {elapsed / n * 1e6:.2f}us/call")

    def test_per_instruction_guard_cost_is_nanoseconds(self):
        # the engines' per-op fast path is literally this: a local that
        # is None plus a truthiness check before any recording call
        col = None
        n = 1_000_000
        t0 = time.perf_counter()
        for _ in range(n):
            if col is not None:
                raise AssertionError
        elapsed = time.perf_counter() - t0
        assert elapsed < n * 1e-6


class TestEnabledStillBounded:
    def test_collector_recording_is_cheap(self, profiler):
        col = profiler.begin_launch("k", "vector", None, "", 64, 1)
        n = 100_000
        t0 = time.perf_counter()
        for i in range(n):
            col.op(7, 64, 1.0, False, 64)
        elapsed = time.perf_counter() - t0
        assert elapsed < n * 20e-6
        assert col.lines[7].execs == n * 64
