"""``python -m repro.prof`` CLI: golden structure of each output format.

These run the real benchmark kernels at the CLI's scaled-down sizes and
pin the acceptance criteria of the profiler: the reduction annotate view
attributes >=95% of modeled cost to source lines, the roofline
classifies EP compute-bound and spmv memory-bound.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.prof.__main__ import main
from repro.prof.report import from_json


@pytest.fixture(autouse=True)
def _fresh(fresh_runtime, profiler):
    """CLI runs enable the global profiler; keep it isolated per test."""


def _run(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestRunAnnotate:
    def test_reduction_attributes_95_percent(self, capsys):
        rc, out = _run(capsys, "run", "reduction")
        assert rc == 0
        assert "kernel reduction_hpl_kernel" in out
        match = re.search(r"attributed: +([\d.]+)% of modeled cost", out)
        assert match, out
        assert float(match.group(1)) >= 95.0

    def test_annotate_layout(self, capsys):
        rc, out = _run(capsys, "run", "reduction")
        assert rc == 0
        # gutter header, hot-line marker and the divergence footer
        assert re.search(r"line +cost% +execs +ops +bytes +tx", out)
        assert "*HOT*" in out
        assert "divergent branches (worst first):" in out
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in out


class TestRunRoofline:
    def test_ep_is_compute_bound(self, capsys):
        rc, out = _run(capsys, "run", "ep", "--format", "roofline")
        assert rc == 0
        assert re.search(r"ep_hpl_kernel .*compute-bound", out)

    def test_spmv_is_memory_bound(self, capsys):
        rc, out = _run(capsys, "run", "spmv", "--format", "roofline")
        assert rc == 0
        assert re.search(r"spmv_hpl_kernel .*memory-bound", out)


class TestSavedProfiles:
    def test_json_roundtrip_and_rerender(self, capsys, tmp_path):
        path = tmp_path / "ep.json"
        rc, _ = _run(capsys, "run", "ep", "--format", "json",
                     "-o", str(path))
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        (profile,) = from_json(path.read_text())
        assert profile.kernel == "ep_hpl_kernel"
        assert profile.bound == "compute"

        for command, needle in (
                ("annotate", "kernel ep_hpl_kernel"),
                ("flame", "ep_hpl_kernel [vector]"),
                ("roofline", "compute-bound")):
            rc, out = _run(capsys, command, str(path))
            assert rc == 0
            assert needle in out

    def test_flame_lines_are_collapsed_stacks(self, capsys, tmp_path):
        path = tmp_path / "red.flame"
        rc, _ = _run(capsys, "run", "reduction", "--format", "flame",
                     "-o", str(path))
        assert rc == 0
        for line in path.read_text().splitlines():
            # semicolon-separated frames, integer sample count at the end
            frames, _, count = line.rpartition(" ")
            assert frames.count(";") >= 2
            assert count.isdigit()

    def test_missing_profile_is_an_error(self, capsys, tmp_path):
        rc = main(["annotate", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_garbage_profile_is_an_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("this is not json")
        rc = main(["annotate", str(bad)])
        assert rc == 2
        assert "not a profile JSON" in capsys.readouterr().err

    def test_empty_profile_list_is_an_error(self, capsys, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("{\"version\": 1, \"profiles\": []}")
        rc = main(["annotate", str(empty)])
        assert rc == 2
        assert "contains no profiles" in capsys.readouterr().err
