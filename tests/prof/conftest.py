"""Fixtures for the profiler tests: an isolated, enabled profiler."""

from __future__ import annotations

import pytest

from repro import prof


@pytest.fixture()
def profiler():
    """A fresh enabled global profiler, restored afterwards."""
    old = prof.get_profiler()
    p = prof.set_profiler(prof.Profiler(enabled=True))
    yield p
    prof.set_profiler(old)
