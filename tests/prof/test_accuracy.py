"""Profiler accuracy: hand-computed per-line counts, engine parity.

The AXPY kernel below is small enough to count by hand.  With 64 work
items, the statement line ``y[i] = a * x[i] + y[i];`` performs per item
two global loads, one global store and two fp32 ALU ops, so its line
record must show exactly

* ``loads = 128``, ``stores = 64`` (→ 192 memory executions),
* ``alu_ops = 128`` (weight 1.0 each), ``fp64_ops = 0``,
* ``execs = 320`` (192 memory + 128 ALU),
* ``mem_bytes = 768`` (192 accesses x 4 bytes).

Those numbers are engine- and opt-level-independent.  Transaction
counts differ by *model*: the serial (CPU) engine counts one
transaction per access (192), the vector (GPU) engine coalesces each
warp's 128 contiguous bytes into one segment (3 accesses x 2 warps =
6).  Both engines must also agree line-by-line on execution counts for
every kernel, at -O0 (tree interpreters) and -O2 (flat bytecode) alike.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from repro.ocl import TESLA_C2050

AXPY = """__kernel void axpy(__global const float* x,
                   __global float* y,
                   float a)
{
    int i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"""
AXPY_LINE = 6          # the y[i] = ... statement
N = 64

LOOP = """__kernel void looped(__global int* out)
{
    int i = get_global_id(0);
    int acc = 0;
    int j = 0;
    while (j < 10) {
        acc = acc + j;
        j = j + 1;
    }
    out[i] = acc;
}
"""

OPT_LEVELS = ("-cl-opt-disable", "-O2")
ENGINES = ("serial", "vector", "jit")


def _run_axpy(cl_run, engine, options):
    device = cl.Device(TESLA_C2050, engine)
    x = np.arange(N, dtype=np.float32)
    y = np.ones(N, dtype=np.float32)
    cl_run(device, AXPY, "axpy", [x, y, np.float32(2.0)],
           (N,), (N,), options=options)
    return x, y


class TestHandComputedCounts:
    @pytest.mark.parametrize("options", OPT_LEVELS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_axpy_line_stats(self, profiler, cl_run, engine, options):
        x, y = _run_axpy(cl_run, engine, options)
        np.testing.assert_allclose(y, 2.0 * x + 1.0, rtol=1e-6)

        (profile,) = profiler.profiles()
        stat = profile.lines[AXPY_LINE]
        assert stat.loads == 2 * N
        assert stat.stores == N
        assert stat.alu_ops == 2 * N
        assert stat.fp64_ops == 0
        assert stat.execs == 5 * N
        assert stat.mem_bytes == 3 * N * 4
        # all of the modeled cost lands on annotated source lines
        assert profile.attributed_fraction() == pytest.approx(1.0)

    @pytest.mark.parametrize("options", OPT_LEVELS)
    def test_transaction_models(self, profiler, cl_run, options):
        # serial = CPU model: one transaction per access
        _run_axpy(cl_run, "serial", options)
        (serial,) = profiler.drain()
        assert serial.lines[AXPY_LINE].transactions == 3 * N
        # vector = GPU model: each warp's 32 contiguous floats coalesce
        # into one 128-byte segment -> 3 accesses x 2 warps
        _run_axpy(cl_run, "vector", options)
        (vector,) = profiler.drain()
        assert vector.lines[AXPY_LINE].transactions == 6
        assert vector.lines[AXPY_LINE].coalescing(128) == pytest.approx(1.0)


class TestEngineParity:
    """Every engine must attribute identical execution counts to
    identical lines — the same program is simulated either way."""

    @pytest.mark.parametrize("source,name,nargs", [
        (AXPY, "axpy", "axpy"),
        (LOOP, "looped", "loop"),
    ], ids=["axpy", "loop"])
    @pytest.mark.parametrize("options", OPT_LEVELS)
    def test_per_line_execs_match(self, profiler, cl_run, source, name,
                                  nargs, options):
        per_engine = {}
        for engine in ENGINES:
            device = cl.Device(TESLA_C2050, engine)
            if name == "axpy":
                x = np.arange(N, dtype=np.float32)
                y = np.ones(N, dtype=np.float32)
                args = [x, y, np.float32(2.0)]
            else:
                args = [np.zeros(N, dtype=np.int32)]
            cl_run(device, source, name, args, (N,), (N,),
                   options=options)
            (profile,) = profiler.drain()
            per_engine[engine] = {
                line: (s.execs, s.loads, s.stores, s.mem_bytes)
                for line, s in profile.lines.items()}
        assert per_engine["serial"] == per_engine["vector"]
        assert per_engine["jit"] == per_engine["vector"]

    def test_loop_body_attribution(self, profiler, cl_run):
        """The while body must carry the trip count: 10 iterations x 64
        items of ``acc = acc + j`` is 640 additions on line 7."""
        device = cl.Device(TESLA_C2050, "serial")
        out = np.zeros(N, dtype=np.int32)
        cl_run(device, LOOP, "looped", [out], (N,), (N,),
               options="-cl-opt-disable")
        assert (out == 45).all()
        (profile,) = profiler.drain()
        assert profile.lines[7].alu_ops == 10 * N
