"""Unit tests of the profiler data model: merge, serialize, derive."""

from __future__ import annotations

import pytest

from repro.prof import BranchStat, KernelProfile, LineStat
from repro.prof.core import merge_profiles


def _mk_profile(kernel="k", engine="vector", launches=1,
                compute_s=2.0, memory_s=1.0) -> KernelProfile:
    p = KernelProfile()
    p.kernel = kernel
    p.engine = engine
    p.device = "dev"
    p.launches = launches
    p.compute_s = compute_s
    p.memory_s = memory_s
    p.total_s = compute_s + memory_s
    p.weighted_ops = 100.0
    p.bytes_moved = 50
    p.compute_ceiling = 1e12
    p.bandwidth_ceiling = 1e11
    line = LineStat()
    line.execs = 10
    line.alu_ops = 10.0
    line.cost_seconds = compute_s + memory_s
    p.lines = {7: line}
    branch = BranchStat()
    branch.add(64, 16)
    p.branches = {7: branch}
    return p


class TestDerivedFields:
    def test_bound_follows_dominant_term(self):
        assert _mk_profile(compute_s=2.0, memory_s=1.0).bound == "compute"
        assert _mk_profile(compute_s=1.0, memory_s=2.0).bound == "memory"

    def test_arithmetic_intensity_and_ridge(self):
        p = _mk_profile()
        assert p.arithmetic_intensity == pytest.approx(2.0)
        assert p.ridge_point == pytest.approx(10.0)

    def test_attributed_fraction_ignores_line_zero(self):
        p = _mk_profile()
        zero = LineStat()
        zero.cost_seconds = p.lines[7].cost_seconds  # as much again
        p.lines[0] = zero
        assert p.attributed_fraction() == pytest.approx(0.5)

    def test_occupancy_defaults_to_full_without_lane_data(self):
        assert LineStat().occupancy == 1.0

    def test_coalescing_caps_at_one(self):
        s = LineStat()
        s.mem_bytes, s.transactions = 4096, 2
        assert s.coalescing(128) == 1.0
        s.transactions = 64          # 8192 segment bytes for 4096 useful
        assert s.coalescing(128) == pytest.approx(0.5)


class TestMerge:
    def test_same_key_profiles_aggregate(self):
        merged = merge_profiles([_mk_profile(), _mk_profile()])
        assert len(merged) == 1
        p = merged[0]
        assert p.launches == 2
        assert p.compute_s == pytest.approx(4.0)
        assert p.lines[7].execs == 20
        assert p.branches[7].events == 2

    def test_merge_leaves_inputs_untouched(self):
        a, b = _mk_profile(), _mk_profile()
        merge_profiles([a, b])
        assert a.launches == 1
        assert a.lines[7].execs == 10

    def test_different_kernels_stay_separate(self):
        merged = merge_profiles([_mk_profile("a"), _mk_profile("b")])
        assert sorted(p.kernel for p in merged) == ["a", "b"]

    def test_different_engines_stay_separate(self):
        merged = merge_profiles([_mk_profile(engine="serial"),
                                 _mk_profile(engine="vector")])
        assert len(merged) == 2


class TestSerialization:
    def test_dict_roundtrip(self):
        p = _mk_profile()
        clone = KernelProfile.from_dict(p.to_dict())
        assert clone.kernel == p.kernel
        assert clone.launches == p.launches
        assert clone.bound == p.bound
        assert clone.lines[7].execs == p.lines[7].execs
        assert clone.branches[7].taken_fraction \
            == p.branches[7].taken_fraction

    def test_to_dict_exposes_derived_fields(self):
        row = _mk_profile().to_dict()
        assert row["bound"] == "compute"
        assert row["arithmetic_intensity"] == pytest.approx(2.0)
