"""Profiler lifecycle: configure(), reset_runtime(), env parsing."""

from __future__ import annotations

import numpy as np
import pytest

import repro.hpl as hpl
import repro.ocl as cl
from repro import prof, trace
from repro.hpl import reset_runtime
from repro.ocl import TESLA_C2050
from repro.prof import _env_enabled

AXPY = """__kernel void axpy(__global float* y)
{
    y[get_global_id(0)] = 1.0f;
}
"""


def _launch(cl_run):
    device = cl.Device(TESLA_C2050, "vector")
    cl_run(device, AXPY, "axpy", [np.zeros(64, dtype=np.float32)],
           (64,), (64,))


class TestConfigure:
    def test_profile_toggle(self, profiler):
        hpl.configure(profile=False)
        assert not prof.is_enabled()
        hpl.configure(profile=True)
        assert prof.is_enabled()

    def test_unrelated_configure_leaves_profiler_alone(self, profiler):
        hpl.configure(opt_level=2)
        assert prof.is_enabled()
        hpl.configure(opt_level=None)


class TestResetRuntime:
    def test_drops_profiles_but_keeps_enabled(self, profiler, cl_run,
                                              fresh_runtime):
        _launch(cl_run)
        assert len(profiler) == 1
        reset_runtime()
        assert len(profiler) == 0
        # the benchsuite resets mid-run under --profile: staying enabled
        # is what keeps the HPL leg's profile collectable
        assert profiler.enabled
        _launch(cl_run)
        assert len(profiler) == 1

    def test_reset_runtime_keeps_global_metrics(self, fresh_runtime):
        # the opt-pipeline experiment aggregates pass counters across
        # runtime resets — reset_runtime must not zero the registry
        counter = trace.get_registry().counter("clc.compiles")
        before = counter.value
        counter.inc()
        reset_runtime()
        assert trace.get_registry().counter("clc.compiles").value \
            == before + 1
        trace.get_registry().counter("clc.compiles").inc(-1)


class TestResetMetrics:
    def test_zeroes_every_instrument(self):
        registry = trace.get_registry()
        registry.counter("prof.test_counter").inc(5)
        trace.reset_metrics()
        assert registry.counter("prof.test_counter").value == 0


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv("HPL_PROFILE", value)
        assert _env_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "False", "no"])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv("HPL_PROFILE", value)
        assert not _env_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("HPL_PROFILE", raising=False)
        assert not _env_enabled()


class TestTraceIntegration:
    def test_profile_attaches_span_attributes(self, profiler, cl_run):
        old = trace.get_tracer()
        tracer = trace.set_tracer(trace.Tracer(enabled=True))
        try:
            _launch(cl_run)
            runs = [s for s in tracer.spans() if s.name == "engine_run"]
            assert runs, [s.name for s in tracer.spans()]
            attrs = runs[-1].attrs
            assert attrs["prof_bound"] in ("compute", "memory")
            assert attrs["prof_total_seconds"] > 0
            assert attrs["prof_attributed"] == pytest.approx(1.0)
        finally:
            trace.set_tracer(old)
            trace.disable()

    def test_profile_bumps_metrics(self, profiler, cl_run):
        registry = trace.get_registry()
        before = registry.counter("prof.launches").value
        _launch(cl_run)
        assert registry.counter("prof.launches").value == before + 1
