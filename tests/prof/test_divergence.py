"""SIMT divergence and lane-occupancy tracking (vector engine only)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.ocl as cl
from repro.ocl import TESLA_C2050

#: a quarter of every 64-lane group takes the branch
DIVERGENT = """__kernel void divhalf(__global float* out)
{
    int lid = get_local_id(0);
    if (lid < 16) {
        out[get_global_id(0)] = 2.0f;
    }
}
"""
IF_LINE, BODY_LINE = 4, 5

#: every lane takes the branch — no divergence to report
UNIFORM = """__kernel void allon(__global float* out)
{
    int lid = get_local_id(0);
    if (lid < 64) {
        out[get_global_id(0)] = 2.0f;
    }
}
"""


def _run(cl_run, source, name, options="-O2"):
    device = cl.Device(TESLA_C2050, "vector")
    out = np.zeros(128, dtype=np.float32)
    cl_run(device, source, name, [out], (128,), (64,), options=options)
    return out


class TestDivergence:
    @pytest.mark.parametrize("options", ("-cl-opt-disable", "-O2"))
    def test_quarter_divergent_branch(self, profiler, cl_run, options):
        out = _run(cl_run, DIVERGENT, "divhalf", options)
        assert out.sum() == 2.0 * 32        # 16 lanes of 2 groups wrote

        (profile,) = profiler.profiles()
        branch = profile.branches[IF_LINE]
        assert branch.events == 1
        assert branch.divergent == 1
        assert branch.taken_fraction == pytest.approx(0.25)
        # the branch is the worst offender in the ranked listing
        assert profile.divergent_branches()[0][0] == IF_LINE

    @pytest.mark.parametrize("options", ("-cl-opt-disable", "-O2"))
    def test_body_occupancy_is_taken_fraction(self, profiler, cl_run,
                                              options):
        _run(cl_run, DIVERGENT, "divhalf", options)
        (profile,) = profiler.profiles()
        # only 32 of 128 lanes execute the masked store
        assert profile.lines[BODY_LINE].occupancy == pytest.approx(0.25)
        # the unmasked statement before the branch runs every lane
        assert profile.lines[IF_LINE].occupancy == pytest.approx(1.0)

    def test_uniform_branch_not_divergent(self, profiler, cl_run):
        _run(cl_run, UNIFORM, "allon")
        (profile,) = profiler.profiles()
        for branch in profile.branches.values():
            assert branch.divergent == 0
        assert profile.divergent_branches() == []

    def test_serial_engine_records_no_lane_data(self, profiler, cl_run):
        device = cl.Device(TESLA_C2050, "serial")
        out = np.zeros(128, dtype=np.float32)
        cl_run(device, DIVERGENT, "divhalf", [out], (128,), (64,))
        (profile,) = profiler.profiles()
        assert profile.branches == {}
        assert all(s.lane_slots == 0 for s in profile.lines.values())
        assert profile.lines[BODY_LINE].occupancy == 1.0
