"""Tracing-off must stay near-free (acceptance: <5% on EP wall clock).

A wall-clock benchmark of EP is too noisy for CI, so this pins the
*mechanism*: the disabled fast path allocates nothing, takes no lock,
and a tight instrumented loop costs well under a microsecond per call —
orders of magnitude below the per-call work at every instrumented site
(kernel launch, program build, buffer transfer).
"""

from __future__ import annotations

import time

from repro import trace


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self):
        trace.disable()
        assert trace.span("a", category="x") is trace.NOOP_SPAN
        assert trace.span("b", category="y") is trace.NOOP_SPAN

    def test_device_event_returns_none_without_recording(self):
        trace.disable()
        before = len(trace.get_tracer())
        assert trace.device_event("d", "k", 0, 10) is None
        assert len(trace.get_tracer()) == before

    def test_disabled_span_cost_is_sub_microsecond_amortized(self):
        trace.disable()
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            with trace.span("hot", category="bench", k=1):
                pass
        elapsed = time.perf_counter() - t0
        # generous CI bound: 10us/call would still pass; typical is ~0.5us
        assert elapsed < n * 10e-6, (
            f"disabled tracing costs {elapsed / n * 1e6:.2f}us per call")

    def test_enabled_tracer_still_bounded(self):
        # sanity: even enabled, spans are cheap enough for per-launch use
        tracer = trace.Tracer(enabled=True)
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("hot", category="bench"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < n * 100e-6
        assert len(tracer) == n
