"""``merge_spans`` and the ``python -m repro.trace merge`` subcommand."""

from __future__ import annotations

from repro.trace import Span, merge_spans, read_spans, write_jsonl
from repro.trace.__main__ import main


def _span(name, span_id, parent_id=None, start_us=0.0, dur_us=5.0):
    span = Span(name, "t", span_id=span_id, parent_id=parent_id,
                thread_id=0, thread_name="main", start_us=start_us)
    span.end_us = start_us + dur_us
    return span


def _spans(n, name_prefix, with_child=False):
    spans = [_span(f"{name_prefix}{i}", i + 1, start_us=i * 10.0)
             for i in range(n)]
    if with_child:
        spans.append(_span(f"{name_prefix}child", n + 1, parent_id=1,
                           start_us=1.0, dur_us=1.0))
    return spans


class TestMergeSpans:
    def test_ids_renumbered_without_aliasing(self):
        # two files whose ids both start at 1 (cold/warm subprocesses)
        merged = merge_spans([_spans(3, "a"), _spans(3, "b")])
        ids = [s.span_id for s in merged]
        assert sorted(ids) == list(range(1, 7))

    def test_parent_links_stay_within_their_file(self):
        merged = merge_spans([_spans(2, "a", with_child=True),
                              _spans(2, "b", with_child=True)])
        by_name = {s.name: s for s in merged}
        for prefix in ("a", "b"):
            child = by_name[f"{prefix}child"]
            assert child.parent_id == by_name[f"{prefix}0"].span_id

    def test_unresolvable_parent_becomes_root(self):
        (merged,) = merge_spans([[_span("orphan", 5, parent_id=99)]])
        assert merged.parent_id is None

    def test_empty_inputs(self):
        assert merge_spans([]) == []
        assert merge_spans([[], []]) == []


class TestMergeCli:
    def test_merges_two_jsonl_traces(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(str(a), _spans(2, "a", with_child=True))
        write_jsonl(str(b), _spans(3, "b"))
        out = tmp_path / "merged.jsonl"
        rc = main(["merge", str(out), str(a), str(b)])
        assert rc == 0
        assert "merged 6 span(s) from 2 trace(s)" in capsys.readouterr().out
        merged = read_spans(str(out))
        assert len(merged) == 6
        assert len({s.span_id for s in merged}) == 6

    def test_merged_trace_summarizes(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(str(a), _spans(2, "x"))
        write_jsonl(str(b), _spans(2, "y"))
        out = tmp_path / "m.jsonl"
        assert main(["merge", str(out), str(a), str(b)]) == 0
        capsys.readouterr()
        assert main(["summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "x0" in text and "y1" in text

    def test_missing_input_is_an_error(self, tmp_path, capsys):
        rc = main(["merge", str(tmp_path / "out.jsonl"),
                   str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
