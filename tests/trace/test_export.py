"""Exporters: Chrome-trace validity, JSONL round trip, summary, CLI."""

from __future__ import annotations

import json

from repro import trace
from repro.trace.__main__ import main as trace_cli


def _make_spans(tracer):
    with trace.span("outer", category="hpl", kernel="saxpy"):
        with trace.span("inner", category="clc"):
            pass
        trace.device_event("GPU0", "ndrange_kernel", 2_000, 9_000,
                           category="simcl", kernel="saxpy")
        trace.device_event("GPU1", "write_buffer", 0, 5_000,
                           category="simcl", bytes=1024)
    return tracer.spans()


class TestChromeTrace:
    def test_document_is_valid_catapult_json(self, tracer, tmp_path):
        spans = _make_spans(tracer)
        path = tmp_path / "trace.json"
        trace.write_chrome_trace(str(path), spans)
        doc = json.loads(path.read_text())

        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert "name" in ev
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], (int, float))
                assert isinstance(ev["dur"], (int, float))
                assert ev["dur"] >= 0
                json.dumps(ev["args"])     # args must be serializable

    def test_wall_and_device_tracks_are_separate_pids(self, tracer):
        doc = trace.chrome_trace(_make_spans(tracer))
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        wall_pids = {e["pid"] for e in x_events
                     if e["cat"] in ("hpl", "clc")}
        sim_pids = {e["pid"] for e in x_events if e["cat"] == "simcl"}
        assert wall_pids == {1}
        assert len(sim_pids) == 2          # one pid per device
        assert 1 not in sim_pids

    def test_process_names_label_the_devices(self, tracer):
        doc = trace.chrome_trace(_make_spans(tracer))
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "wall clock (host)" in names
        assert "sim device: GPU0" in names
        assert "sim device: GPU1" in names

    def test_sim_timestamps_are_nanoseconds_as_microseconds(self, tracer):
        spans = _make_spans(tracer)
        doc = trace.chrome_trace(spans)
        kernel = [e for e in doc["traceEvents"]
                  if e.get("name") == "ndrange_kernel"][0]
        assert kernel["ts"] == 2.0          # 2000 ns -> 2 us
        assert kernel["dur"] == 7.0

    def test_non_json_attrs_are_stringified(self, tracer):
        with trace.span("s", category="test", shape=(4, 8), obj=object()):
            pass
        doc = trace.chrome_trace(tracer.spans())
        json.dumps(doc)                     # must not raise


class TestJsonl:
    def test_roundtrip(self, tracer, tmp_path):
        spans = _make_spans(tracer)
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(str(path), spans)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(spans)
        for line in lines:
            json.loads(line)

        back = trace.read_spans(str(path))
        assert [s.name for s in back] == [s.name for s in spans]
        assert [s.clock for s in back] == [s.clock for s in spans]
        sim = [s for s in back if s.clock == "sim"]
        assert {s.device for s in sim} == {"GPU0", "GPU1"}

    def test_read_spans_sniffs_chrome_json(self, tracer, tmp_path):
        spans = _make_spans(tracer)
        path = tmp_path / "trace.json"
        trace.write_chrome_trace(str(path), spans)
        back = trace.read_spans(str(path))
        assert len(back) == len(spans)
        devices = {s.device for s in back if s.clock == "sim"}
        assert devices == {"GPU0", "GPU1"}


class TestSummary:
    def test_summary_groups_and_counts(self, tracer):
        spans = _make_spans(tracer)
        text = trace.summarize(spans)
        assert f"{len(spans)} span(s)" in text
        assert "hpl.outer" in text
        assert "clc.inner" in text
        assert "simcl.ndrange_kernel" in text
        assert "GPU0" in text and "GPU1" in text

    def test_summary_of_nothing(self):
        assert "(no spans)" in trace.summarize([])


class TestCli:
    def test_summarize_command(self, tracer, tmp_path, capsys):
        spans = _make_spans(tracer)
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(str(path), spans)
        assert trace_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "simcl.ndrange_kernel" in out

    def test_chrome_command(self, tracer, tmp_path, capsys):
        spans = _make_spans(tracer)
        src = tmp_path / "trace.jsonl"
        dst = tmp_path / "chrome.json"
        trace.write_jsonl(str(src), spans)
        assert trace_cli(["chrome", str(src), str(dst)]) == 0
        doc = json.loads(dst.read_text())
        assert "traceEvents" in doc

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert trace_cli(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
