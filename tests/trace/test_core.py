"""Tracer core: nesting, attributes, clocks, thread safety, no-op mode."""

from __future__ import annotations

import threading

from repro import trace
from repro.trace import NoopSpan, Span, Tracer


class TestSpanBasics:
    def test_span_records_duration(self, tracer):
        with trace.span("work", category="test") as sp:
            pass
        (done,) = tracer.spans()
        assert done is sp
        assert done.name == "work"
        assert done.category == "test"
        assert done.clock == "wall"
        assert done.end_us is not None
        assert done.duration_us >= 0.0

    def test_attributes_at_open_and_later(self, tracer):
        with trace.span("work", category="test", a=1) as sp:
            sp.set_attr("b", 2).set_attrs(c=3, d=4)
        assert tracer.spans()[0].attrs == {"a": 1, "b": 2, "c": 3, "d": 4}

    def test_exception_is_recorded_and_propagates(self, tracer):
        try:
            with trace.span("boom", category="test"):
                raise ValueError("x")
        except ValueError:
            pass
        (done,) = tracer.spans()
        assert done.attrs["error"] == "ValueError"
        assert done.end_us is not None

    def test_to_dict_from_dict_roundtrip(self, tracer):
        with trace.span("work", category="test", k="v"):
            pass
        row = tracer.spans()[0].to_dict()
        back = Span.from_dict(row)
        assert back.name == "work"
        assert back.category == "test"
        assert back.attrs == {"k": "v"}
        assert abs(back.duration_us - row["dur_us"]) < 1e-9


class TestNesting:
    def test_parent_ids_follow_lexical_nesting(self, tracer):
        with trace.span("outer", category="test") as outer:
            assert tracer.current() is outer
            with trace.span("inner", category="test") as inner:
                assert tracer.current() is inner
                with trace.span("leaf", category="test") as leaf:
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["leaf"].parent_id == by_name["inner"].span_id
        assert by_name["leaf"] is leaf and by_name["inner"] is inner

    def test_siblings_share_a_parent(self, tracer):
        with trace.span("outer", category="test"):
            with trace.span("a", category="test"):
                pass
            with trace.span("b", category="test"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a"].parent_id == by_name["outer"].span_id
        assert by_name["b"].parent_id == by_name["outer"].span_id

    def test_current_is_none_at_top_level(self, tracer):
        assert tracer.current() is None


class TestDeviceEvents:
    def test_device_event_is_a_completed_sim_span(self, tracer):
        with trace.span("host", category="test"):
            sp = trace.device_event("GPU0", "kernel", 1_000, 4_000,
                                    category="simcl", k=1)
        assert sp.clock == "sim"
        assert sp.device == "GPU0"
        assert sp.start_us == 1.0 and sp.end_us == 4.0
        host = [s for s in tracer.spans() if s.name == "host"][0]
        assert sp.parent_id == host.span_id


class TestThreadSafety:
    def test_per_thread_context_stacks(self, tracer):
        n_threads, n_spans = 8, 50
        errors: list[str] = []

        def worker(tid: int) -> None:
            for i in range(n_spans):
                with trace.span(f"outer-{tid}", category="test") as outer:
                    with trace.span(f"inner-{tid}", category="test") as sp:
                        if tracer.current() is not sp:
                            errors.append("current() leaked across threads")
                        if sp.parent_id != outer.span_id:
                            errors.append("parent from another thread")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.spans()
        assert len(spans) == n_threads * n_spans * 2
        # every inner span's parent must be an outer span of the same thread
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name.startswith("inner"):
                parent = by_id[s.parent_id]
                assert parent.thread_id == s.thread_id

    def test_span_ids_are_unique(self, tracer):
        def worker() -> None:
            for _ in range(100):
                with trace.span("s", category="test"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids)) == 400


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        trace.disable()
        cm = trace.span("x", category="test")
        assert cm is trace.NOOP_SPAN
        with cm as sp:
            assert isinstance(sp, NoopSpan)
            sp.set_attr("a", 1).set_attrs(b=2)   # all no-ops
        assert trace.device_event("d", "n", 0, 1) is None
        assert trace.current_span() is None

    def test_spans_opened_while_disabled_are_not_recorded(self, tracer):
        tracer.enabled = False
        with trace.span("x", category="test"):
            pass
        assert len(tracer.spans()) == 0

    def test_enable_disable_toggles_global(self):
        old = trace.get_tracer()
        try:
            t = trace.enable(fresh=True)
            assert trace.is_enabled()
            assert trace.get_tracer() is t
            trace.disable()
            assert not trace.is_enabled()
        finally:
            trace.set_tracer(old)


class TestTracedDecorator:
    def test_traced_with_name(self, tracer):
        @trace.traced("custom", category="test")
        def f(x):
            return x + 1

        assert f(1) == 2
        (done,) = tracer.spans()
        assert done.name == "custom"

    def test_traced_bare(self, tracer):
        @trace.traced
        def g():
            return 7

        assert g() == 7
        assert tracer.spans()[0].name == "g"

    def test_traced_no_overhead_path_when_disabled(self):
        trace.disable()

        @trace.traced("n", category="test")
        def h():
            return 1

        assert h() == 1


class TestTracerHousekeeping:
    def test_clear_and_len(self, tracer):
        with trace.span("a", category="test"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_repr(self):
        t = Tracer(enabled=True)
        assert "enabled" in repr(t)
