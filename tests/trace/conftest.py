"""Fixtures for the trace tests: an isolated, enabled global tracer."""

from __future__ import annotations

import pytest

from repro import trace


@pytest.fixture()
def tracer():
    """A fresh enabled global tracer, restored (disabled) afterwards."""
    old = trace.get_tracer()
    t = trace.set_tracer(trace.Tracer(enabled=True))
    yield t
    trace.set_tracer(old)
    trace.disable()
