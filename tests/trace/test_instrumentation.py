"""End-to-end instrumentation: HPL, SimCL and clc emit the right spans."""

from __future__ import annotations

import numpy as np
import pytest

import repro.hpl as hpl
from repro import trace
from repro.errors import ProfilingDisabledError, ProfilingInfoNotAvailable
from repro.hpl import Array, Double, double_, idx


def saxpy(y, x, a):
    y[idx] = a * x[idx] + y[idx]


def _run_saxpy_twice():
    n = 32
    x = Array(double_, n)
    y = Array(double_, n)
    x.data[:] = 1.0
    y.data[:] = 2.0
    first = hpl.eval(saxpy)(y, x, Double(3.0))
    second = hpl.eval(saxpy)(y, x, Double(3.0))
    y.read()
    return first, second


@pytest.fixture()
def traced_runtime(fresh_runtime, tracer):
    """Fresh HPL runtime under a fresh enabled tracer."""
    return tracer


class TestHplSpans:
    def test_cold_eval_emits_capture_build_launch(self, traced_runtime):
        _run_saxpy_twice()
        names = [(s.category, s.name) for s in traced_runtime.spans()]
        assert names.count(("hpl", "capture")) == 1
        assert names.count(("hpl", "build")) == 1
        assert names.count(("hpl", "eval")) == 2
        assert names.count(("hpl", "launch")) == 2
        assert names.count(("hpl", "bind_args")) == 2

    def test_eval_spans_record_cache_hit_and_miss(self, traced_runtime):
        _run_saxpy_twice()
        evals = [s for s in traced_runtime.spans()
                 if (s.category, s.name) == ("hpl", "eval")]
        assert [s.attrs["cache"] for s in evals] == ["miss", "hit"]
        assert all(s.attrs["kernel"] == "saxpy" for s in evals)
        assert all("device" in s.attrs for s in evals)

    def test_nesting_capture_under_eval(self, traced_runtime):
        _run_saxpy_twice()
        spans = traced_runtime.spans()
        by_id = {s.span_id: s for s in spans}
        capture = [s for s in spans if s.name == "capture"][0]
        build = [s for s in spans if s.name == "build"][0]
        assert by_id[capture.parent_id].name == "eval"
        assert by_id[build.parent_id].name == "eval"

    def test_build_span_attrs(self, traced_runtime):
        _run_saxpy_twice()
        build = [s for s in traced_runtime.spans()
                 if s.name == "build"][0]
        assert build.attrs["kernel"] == "saxpy"
        assert build.attrs["build_seconds"] > 0

    def test_launch_span_carries_sim_kernel_seconds(self, traced_runtime):
        _run_saxpy_twice()
        launches = [s for s in traced_runtime.spans()
                    if s.name == "launch"]
        assert all(s.attrs["sim_kernel_seconds"] > 0 for s in launches)


class TestClcSpans:
    def test_compile_pipeline_stages(self, traced_runtime):
        _run_saxpy_twice()
        clc = [s.name for s in traced_runtime.spans()
               if s.category == "clc"]
        for stage in ("compile", "preprocess", "lex", "parse", "sema"):
            assert stage in clc
        spans = traced_runtime.spans()
        by_id = {s.span_id: s for s in spans}
        parse = [s for s in spans if s.name == "parse"][0]
        assert by_id[parse.parent_id].name == "compile"
        assert parse.attrs["tokens"] > 0


class TestSimclSpans:
    def test_device_events_on_simulated_clock(self, traced_runtime):
        _run_saxpy_twice()
        sim = [s for s in traced_runtime.spans() if s.clock == "sim"]
        kinds = {s.name for s in sim}
        assert "ndrange_kernel" in kinds
        assert "write_buffer" in kinds
        assert "read_buffer" in kinds
        assert all(s.device for s in sim)
        # simulated timeline is monotone per device: spans don't overlap
        per_device: dict = {}
        for s in sorted(sim, key=lambda s: s.start_us):
            last = per_device.get(s.device, 0.0)
            assert s.start_us >= last - 1e-9
            per_device[s.device] = s.end_us

    def test_kernel_event_attrs_and_engine_span(self, traced_runtime):
        _run_saxpy_twice()
        spans = traced_runtime.spans()
        kernel_events = [s for s in spans if s.name == "ndrange_kernel"]
        assert all(s.attrs["kernel"] == "saxpy" for s in kernel_events)
        engine_runs = [s for s in spans if s.name == "engine_run"]
        assert len(engine_runs) == 2
        assert all(s.attrs["engine"] in ("vector", "serial")
                   for s in engine_runs)
        assert all(s.attrs["work_items"] == 32 for s in engine_runs)


class TestStatsIntegration:
    def test_transfer_seconds_accumulate(self, traced_runtime):
        _run_saxpy_twice()
        stats = hpl.get_runtime().stats
        assert stats.h2d_transfers == 2          # x and y, once each
        assert stats.h2d_seconds > 0
        assert stats.d2h_transfers == 1          # y readback
        assert stats.d2h_seconds > 0
        assert stats.transfer_seconds == pytest.approx(
            stats.h2d_seconds + stats.d2h_seconds)

    def test_stats_visible_in_registry_summary(self, traced_runtime):
        _run_saxpy_twice()
        stats = hpl.get_runtime().stats
        text = stats.registry.summary()
        assert "hpl.cache_hits" in text
        assert "hpl.h2d_seconds" in text


class TestProfilingDisabledError:
    def test_error_type_and_message_name_the_queue(self):
        import repro.ocl as cl
        from repro.ocl import TESLA_C2050

        device = cl.Device(TESLA_C2050, "vector")
        ctx = cl.Context([device])
        queue = cl.CommandQueue(ctx, device, profiling=False)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64)
        event = queue.enqueue_write_buffer(
            buf, np.zeros(8, dtype=np.float64))
        with pytest.raises(ProfilingDisabledError) as exc:
            _ = event.duration_ns
        assert device.name in str(exc.value)
        assert "profiling=False" in str(exc.value)
        # the new error still satisfies the old contract
        assert isinstance(exc.value, ProfilingInfoNotAvailable)

    def test_profiling_enabled_queue_still_works(self):
        import repro.ocl as cl
        from repro.ocl import TESLA_C2050

        device = cl.Device(TESLA_C2050, "vector")
        ctx = cl.Context([device])
        queue = cl.CommandQueue(ctx, device, profiling=True)
        buf = cl.Buffer(ctx, cl.mem_flags.READ_WRITE, size=64)
        event = queue.enqueue_write_buffer(
            buf, np.zeros(8, dtype=np.float64))
        assert event.duration_ns > 0
        assert event.device_name == device.name


class TestDisabledByDefault:
    def test_default_tracer_records_nothing_from_hpl(self, fresh_runtime):
        assert not trace.is_enabled()
        before = len(trace.get_tracer())
        _run_saxpy_twice()
        assert len(trace.get_tracer()) == before
