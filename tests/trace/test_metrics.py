"""Metrics registry: counters, gauges, histogram percentiles, facade."""

from __future__ import annotations

import threading

import pytest

from repro.trace import Counter, Gauge, Histogram, MetricsRegistry
from repro.trace import get_registry


class TestCounter:
    def test_inc_and_set(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2
        c.reset()
        assert c.value == 0

    def test_float_increments(self):
        c = Counter("c")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)

    def test_concurrent_increments_do_not_lose_updates(self):
        c = Counter("c")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.5)
        g.set(-2.0)
        assert g.value == -2.0


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.sum == 0.0
        assert h.p50 == h.p95 == h.p99 == 0.0

    def test_stats_and_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):          # 1..100
            h.observe(v)
        assert h.count == 100
        assert h.sum == 5050
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(50.5)
        assert h.p50 == pytest.approx(50.5)
        assert h.p95 == pytest.approx(95.05)
        assert h.p99 == pytest.approx(99.01)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_percentile_validation(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(3.0)
        assert h.p50 == h.p99 == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("temp").set(1.25)
        reg.histogram("lat").observe(10.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"temp": 1.25}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["histograms"]["lat"]["p95"] == 10.0

    def test_summary_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.gauge("temp").set(2.0)
        reg.histogram("lat").observe(1.0)
        text = reg.summary("title")
        assert "title" in text
        assert "hits" in text and "temp" in text and "lat" in text

    def test_empty_summary(self):
        assert "(empty)" in MetricsRegistry().summary()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(7.0)
        reg.histogram("c").observe(1.0)
        reg.reset()
        assert reg.counter("a").value == 0
        assert reg.gauge("b").value == 0.0
        assert reg.histogram("c").count == 0

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestRuntimeStatsFacade:
    """RuntimeStats is now a view over a registry (satellite: sync)."""

    def test_attribute_api_unchanged(self):
        from repro.hpl.runtime import RuntimeStats

        stats = RuntimeStats()
        stats.cache_hits += 1
        stats.h2d_bytes += 1024
        stats.codegen_seconds += 0.5
        assert stats.cache_hits == 1
        assert stats.h2d_bytes == 1024
        assert stats.codegen_seconds == 0.5

    def test_fields_mirror_into_registry(self):
        from repro.hpl.runtime import RuntimeStats

        stats = RuntimeStats()
        stats.kernels_built += 2
        stats.h2d_seconds += 0.125
        snap = stats.registry.snapshot()["counters"]
        assert snap["hpl.kernels_built"] == 2
        assert snap["hpl.h2d_seconds"] == 0.125
        # all fields are materialized even when untouched
        assert snap["hpl.launches"] == 0

    def test_transfer_seconds_sums_both_directions(self):
        from repro.hpl.runtime import RuntimeStats

        stats = RuntimeStats(h2d_seconds=0.25, d2h_seconds=0.5)
        assert stats.transfer_seconds == pytest.approx(0.75)

    def test_cache_hit_rate(self):
        from repro.hpl.runtime import RuntimeStats

        stats = RuntimeStats()
        assert stats.cache_hit_rate == 0.0
        stats.kernels_built = 1
        stats.cache_hits = 3
        assert stats.cache_hit_rate == pytest.approx(0.75)

    def test_equality_and_repr(self):
        from repro.hpl.runtime import RuntimeStats

        a, b = RuntimeStats(), RuntimeStats()
        assert a == b
        a.launches += 1
        assert a != b
        assert "launches=1" in repr(a)

    def test_unknown_kwarg_rejected(self):
        from repro.hpl.runtime import RuntimeStats

        with pytest.raises(TypeError):
            RuntimeStats(bogus=1)
